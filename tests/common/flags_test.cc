#include "common/flags.h"

#include <gtest/gtest.h>

namespace eos {
namespace {

std::vector<char*> Argv(std::vector<std::string>& args) {
  std::vector<char*> out;
  out.push_back(nullptr);  // argv[0]
  for (auto& a : args) out.push_back(a.data());
  return out;
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  FlagSet flags;
  int64_t* epochs = flags.AddInt("epochs", 20, "epochs");
  double* lr = flags.AddDouble("lr", 0.1, "rate");
  bool* verbose = flags.AddBool("verbose", false, "talk");
  std::string* name = flags.AddString("name", "eos", "name");
  std::vector<std::string> args;
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*epochs, 20);
  EXPECT_DOUBLE_EQ(*lr, 0.1);
  EXPECT_FALSE(*verbose);
  EXPECT_EQ(*name, "eos");
}

TEST(FlagsTest, EqualsAndSpaceForms) {
  FlagSet flags;
  int64_t* a = flags.AddInt("a", 0, "");
  int64_t* b = flags.AddInt("b", 0, "");
  std::vector<std::string> args = {"--a=3", "--b", "7"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*a, 3);
  EXPECT_EQ(*b, 7);
}

TEST(FlagsTest, BareBoolSetsTrue) {
  FlagSet flags;
  bool* v = flags.AddBool("verbose", false, "");
  std::vector<std::string> args = {"--verbose"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(*v);
}

TEST(FlagsTest, BoolExplicitValues) {
  FlagSet flags;
  bool* v = flags.AddBool("x", true, "");
  std::vector<std::string> args = {"--x=false"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_FALSE(*v);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags;
  flags.AddInt("a", 0, "");
  std::vector<std::string> args = {"--nope=1"};
  auto argv = Argv(args);
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, BadIntegerFails) {
  FlagSet flags;
  flags.AddInt("a", 0, "");
  std::vector<std::string> args = {"--a=xyz"};
  auto argv = Argv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags;
  flags.AddInt("a", 0, "");
  std::vector<std::string> args = {"--a"};
  auto argv = Argv(args);
  EXPECT_FALSE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagsTest, HelpRequested) {
  FlagSet flags;
  flags.AddInt("a", 0, "doc for a");
  std::vector<std::string> args = {"--help"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Usage().find("doc for a"), std::string::npos);
}

TEST(FlagsTest, NegativeNumbers) {
  FlagSet flags;
  int64_t* a = flags.AddInt("a", 0, "");
  double* b = flags.AddDouble("b", 0.0, "");
  std::vector<std::string> args = {"--a=-5", "--b=-2.5"};
  auto argv = Argv(args);
  ASSERT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(*a, -5);
  EXPECT_DOUBLE_EQ(*b, -2.5);
}

}  // namespace
}  // namespace eos
