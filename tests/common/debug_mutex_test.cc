// Runtime lock-order detector contract tests (common/debug_mutex.h,
// common/lock_order.h). The inversion cases run as gtest death tests so the
// detector's abort happens in forked children; everything else enables
// tracking only for the test body. Consistent orderings across tests cannot
// interfere: nodes are keyed by instance, and every DebugMutex here is
// scoped to its test.

#include "common/debug_mutex.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "common/condvar.h"
#include "common/lock_order.h"

namespace eos {
namespace {

/// Arms the detector for one test body (and one death-test child).
class ScopedDetect {
 public:
  ScopedDetect() { lock_order::SetEnabled(true); }
  ~ScopedDetect() { lock_order::SetEnabled(false); }
};

TEST(DebugMutexDeathTest, AbbaInversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedDetect detect;
        DebugMutex a("death.A");
        DebugMutex b("death.B");
        {
          std::lock_guard<DebugMutex> la(a);
          std::lock_guard<DebugMutex> lb(b);  // records A -> B
        }
        {
          std::lock_guard<DebugMutex> lb(b);
          std::lock_guard<DebugMutex> la(a);  // B -> A inverts: abort
        }
      },
      "lock-order violation");
}

TEST(DebugMutexDeathTest, DiagnosticNamesBothLocksAndHeldStack) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedDetect detect;
        DebugMutex a("death.Outer");
        DebugMutex b("death.Inner");
        {
          std::lock_guard<DebugMutex> la(a);
          std::lock_guard<DebugMutex> lb(b);
        }
        std::lock_guard<DebugMutex> lb(b);
        std::lock_guard<DebugMutex> la(a);
      },
      "death.Outer.*death.Inner|death.Inner.*death.Outer");
}

TEST(DebugMutexDeathTest, InversionViaThirdLockAborts) {
  // A -> B and B -> C make C -> A an inversion through transitive
  // reachability, even though the pair (C, A) was never ordered directly.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedDetect detect;
        DebugMutex a("death.T.A");
        DebugMutex b("death.T.B");
        DebugMutex c("death.T.C");
        {
          std::lock_guard<DebugMutex> la(a);
          std::lock_guard<DebugMutex> lb(b);
        }
        {
          std::lock_guard<DebugMutex> lb(b);
          std::lock_guard<DebugMutex> lc(c);
        }
        std::lock_guard<DebugMutex> lc(c);
        std::lock_guard<DebugMutex> la(a);
      },
      "lock-order violation");
}

TEST(DebugMutexTest, ConsistentOrderNeverAborts) {
  ScopedDetect detect;
  DebugMutex outer("test.outer");
  DebugMutex inner("test.inner");
  for (int i = 0; i < 100; ++i) {
    std::lock_guard<DebugMutex> lo(outer);
    std::lock_guard<DebugMutex> li(inner);
  }
  SUCCEED();
}

TEST(DebugMutexTest, HeldCountTracksAcquireAndRelease) {
  ScopedDetect detect;
  EXPECT_EQ(lock_order::HeldCount(), 0);
  DebugMutex a("test.held.a");
  DebugMutex b("test.held.b");
  {
    std::lock_guard<DebugMutex> la(a);
    EXPECT_EQ(lock_order::HeldCount(), 1);
    {
      std::lock_guard<DebugMutex> lb(b);
      EXPECT_EQ(lock_order::HeldCount(), 2);
    }
    EXPECT_EQ(lock_order::HeldCount(), 1);
  }
  EXPECT_EQ(lock_order::HeldCount(), 0);
}

TEST(DebugMutexTest, TryLockRecordsOnlyOnSuccess) {
  ScopedDetect detect;
  DebugMutex mu("test.try");
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(lock_order::HeldCount(), 1);
  // A failed try on another thread must record nothing there (held sets
  // are per-thread; the global enable from ScopedDetect covers both).
  std::thread blocked([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_EQ(lock_order::HeldCount(), 0);
  });
  blocked.join();
  mu.unlock();
  EXPECT_EQ(lock_order::HeldCount(), 0);
}

TEST(DebugMutexTest, DisabledDetectorIgnoresInversions) {
  // With tracking off both orders of the same pair are silent — the
  // process must NOT abort.
  ASSERT_FALSE(lock_order::Enabled());
  DebugMutex a("test.off.a");
  DebugMutex b("test.off.b");
  {
    std::lock_guard<DebugMutex> la(a);
    std::lock_guard<DebugMutex> lb(b);
  }
  {
    std::lock_guard<DebugMutex> lb(b);
    std::lock_guard<DebugMutex> la(a);
  }
  EXPECT_EQ(lock_order::HeldCount(), 0);
}

TEST(DebugMutexTest, DestroyedInstanceRetiresItsEdges) {
  // Record outer -> inner, destroy inner, then recreate a fresh lock and
  // take it in the opposite order: instance keying plus edge retirement
  // means no stale ordering can survive, so this must not abort.
  ScopedDetect detect;
  DebugMutex outer("test.retire.outer");
  {
    DebugMutex inner("test.retire.inner");
    std::lock_guard<DebugMutex> lo(outer);
    std::lock_guard<DebugMutex> li(inner);
  }
  DebugMutex reborn("test.retire.reborn");
  std::lock_guard<DebugMutex> lr(reborn);
  std::lock_guard<DebugMutex> lo(outer);
  SUCCEED();
}

TEST(DebugMutexTest, InstanceKeyingAllowsPerObjectLocking) {
  // Two threads each locking their own pair in opposite member order is
  // NOT an inversion: the four locks are four distinct nodes.
  ScopedDetect detect;
  DebugMutex a1("test.inst.mu_");
  DebugMutex b1("test.inst.mu_");
  DebugMutex a2("test.inst.mu_");
  DebugMutex b2("test.inst.mu_");
  {
    std::lock_guard<DebugMutex> l1(a1);
    std::lock_guard<DebugMutex> l2(b1);
  }
  {
    std::lock_guard<DebugMutex> l2(b2);
    std::lock_guard<DebugMutex> l1(a2);
  }
  SUCCEED();
}

TEST(DebugMutexTest, CondVarWaitKeepsHeldBookkeeping) {
  ScopedDetect detect;
  DebugMutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    std::lock_guard<DebugMutex> lock(mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    std::unique_lock<DebugMutex> lock(mu);
    cv.Wait(lock, mu, [&] { return ready; });
    // The wait's internal unlock/relock must not disturb the held set.
    EXPECT_EQ(lock_order::HeldCount(), 1);
  }
  EXPECT_EQ(lock_order::HeldCount(), 0);
  notifier.join();
}

TEST(DebugMutexTest, EnableMidRunStartsCleanAndDisableFreezes) {
  DebugMutex mu("test.midrun");
  mu.lock();  // acquired while tracking is off: never recorded
  lock_order::SetEnabled(true);
  EXPECT_EQ(lock_order::HeldCount(), 0);
  mu.unlock();  // release of an untracked lock must not underflow
  EXPECT_EQ(lock_order::HeldCount(), 0);
  lock_order::SetEnabled(false);
}

}  // namespace
}  // namespace eos
