#include "common/string_util.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace eos {
namespace {

TEST(StrSplitTest, Basic) {
  auto parts = StrSplit("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  auto parts = StrSplit(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(StrSplitTest, NoSeparator) {
  auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrJoinTest, RoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(parts, "-"), "x-y-z");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "ok", 1.5), "7-ok-1.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StrTrimTest, TrimsWhitespace) {
  EXPECT_EQ(StrTrim("  hi \n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("inner space kept"), "inner space kept");
}

TEST(FormatMetricTest, PaperStyle) {
  EXPECT_EQ(FormatMetric(0.7581), ".7581");
  EXPECT_EQ(FormatMetric(0.7581, 2), ".76");
  EXPECT_EQ(FormatMetric(0.7581, 4, /*leading_zero=*/true), "0.7581");
  EXPECT_EQ(FormatMetric(1.25), "1.2500");
  EXPECT_EQ(FormatMetric(-0.5), "-.5000");
}

TEST(CsvWriterTest, WritesAndEscapes) {
  std::string path = ::testing::TempDir() + "/eos_csv_test.csv";
  {
    CsvWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.WriteRow({"a", "with,comma", "with\"quote"}).ok());
    ASSERT_TRUE(writer.WriteRow("row", {1.0, 2.5}).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_NE(content.find("row,1,2.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  CsvWriter writer;
  EXPECT_EQ(writer.Open("/nonexistent-dir/x.csv").code(),
            StatusCode::kIoError);
}

TEST(CsvWriterTest, WriteBeforeOpenFails) {
  CsvWriter writer;
  EXPECT_EQ(writer.WriteRow({"x"}).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace eos
