#include "common/condvar.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace eos {
namespace {

TEST(CondVarTest, PredicateWaitObservesNotifiedState) {
  std::mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;

  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.Wait(lock, mu, [&]() REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  });

  {
    std::lock_guard<std::mutex> lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, PlainWaitAbsorbsSpuriousWakeupsViaCallerLoop) {
  std::mutex mu;
  CondVar cv;
  int stage GUARDED_BY(mu) = 0;

  std::thread waiter([&] {
    std::unique_lock<std::mutex> lock(mu);
    while (stage < 2) cv.Wait(lock, mu);
    EXPECT_EQ(stage, 2);
  });

  // Two notifications, each advancing one stage: the waiter's loop must
  // re-check and keep waiting after the first.
  for (int i = 0; i < 2; ++i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++stage;
    }
    cv.NotifyAll();
  }
  waiter.join();
}

TEST(CondVarTest, WaitUntilTimesOutWhenNeverNotified) {
  std::mutex mu;
  CondVar cv;
  std::unique_lock<std::mutex> lock(mu);
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Spurious wakeups may return no_timeout early; keep waiting until the
  // deadline actually passes, as a real caller's predicate loop would.
  while (std::chrono::steady_clock::now() < deadline) {
    cv.WaitUntil(lock, mu, deadline);
  }
  EXPECT_TRUE(lock.owns_lock());  // reacquired after every wakeup
}

TEST(CondVarTest, WaitUntilReturnsBeforeDeadlineWhenNotified) {
  std::mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;

  std::thread notifier([&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });

  std::unique_lock<std::mutex> lock(mu);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!ready) {
    ASSERT_EQ(cv.WaitUntil(lock, mu, deadline), std::cv_status::no_timeout);
  }
  lock.unlock();
  notifier.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  constexpr int kWaiters = 4;
  std::mutex mu;
  CondVar cv;
  bool go GUARDED_BY(mu) = false;
  std::atomic<int> woke{0};

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.Wait(lock, mu, [&]() REQUIRES(mu) { return go; });
      woke.fetch_add(1);
    });
  }

  {
    std::lock_guard<std::mutex> lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVarDeathTest, WaitingOnTheWrongMutexIsFatal) {
  std::mutex mu;
  std::mutex other;
  CondVar cv;
  std::unique_lock<std::mutex> lock(mu);
  // The lock owns mu, but the caller claims the cv is paired with `other`:
  // exactly the mismatched pairing the runtime check exists to catch.
  EXPECT_DEATH({ cv.Wait(lock, other); }, "EOS_CHECK failed");
}

TEST(CondVarDeathTest, WaitingWithoutOwningTheLockIsFatal) {
  std::mutex mu;
  CondVar cv;
  std::unique_lock<std::mutex> lock(mu, std::defer_lock);
  EXPECT_DEATH({ cv.Wait(lock, mu); }, "EOS_CHECK failed");
}

}  // namespace
}  // namespace eos
