// Contract tests: EOS_CHECK violations must abort with a diagnostic. These
// run as gtest death tests so the aborts happen in forked children.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ EOS_CHECK(1 == 2); }, "EOS_CHECK failed");
}

TEST(CheckDeathTest, ComparisonMacros) {
  EXPECT_DEATH({ EOS_CHECK_EQ(1, 2); }, "EOS_CHECK failed");
  EXPECT_DEATH({ EOS_CHECK_LT(2, 1); }, "EOS_CHECK failed");
  EXPECT_DEATH({ EOS_CHECK_GE(0, 1); }, "EOS_CHECK failed");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  EOS_CHECK(true);
  EOS_CHECK_EQ(2, 2);
  EOS_CHECK_LE(1, 1);
  SUCCEED();
}

TEST(TensorDeathTest, OutOfBoundsAtAborts) {
  Tensor t({2, 2});
  EXPECT_DEATH({ t.at(2, 0); }, "EOS_CHECK failed");
  EXPECT_DEATH({ t.at(0, -1); }, "EOS_CHECK failed");
}

TEST(TensorDeathTest, RankMismatchAtAborts) {
  Tensor t({4});
  EXPECT_DEATH({ t.at(0, 0); }, "EOS_CHECK failed");
}

TEST(TensorDeathTest, BadReshapeAborts) {
  Tensor t({2, 3});
  EXPECT_DEATH({ t.Reshape({4, 2}); }, "EOS_CHECK failed");
  EXPECT_DEATH({ t.Reshape({-1, -1}); }, "EOS_CHECK failed");
}

TEST(TensorDeathTest, ShapeMismatchOpsAbort) {
  Tensor a({2, 2});
  Tensor b({2, 3});
  EXPECT_DEATH({ Add(a, b); }, "EOS_CHECK failed");
  EXPECT_DEATH({ AddInPlace(a, b); }, "EOS_CHECK failed");
}

TEST(RngDeathTest, NonPositiveUniformIntAborts) {
  Rng rng(1);
  EXPECT_DEATH({ rng.UniformInt(0); }, "EOS_CHECK failed");
  EXPECT_DEATH({ rng.UniformInt(-3); }, "EOS_CHECK failed");
}

TEST(RngDeathTest, EmptyCategoricalAborts) {
  Rng rng(2);
  EXPECT_DEATH({ rng.Categorical({0.0f, 0.0f}); }, "EOS_CHECK failed");
}

}  // namespace
}  // namespace eos
