#include "runtime/parallel_for.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/thread_pool.h"

namespace eos::runtime {
namespace {

// Each test pins the lane count it needs; reset to a parallel config so test
// order never matters.
class ParallelForTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreadCount(4); }
};

TEST_F(ParallelForTest, NumChunksIsCeilDiv) {
  EXPECT_EQ(NumChunks(0, 4), 0);
  EXPECT_EQ(NumChunks(-5, 4), 0);
  EXPECT_EQ(NumChunks(1, 4), 1);
  EXPECT_EQ(NumChunks(4, 4), 1);
  EXPECT_EQ(NumChunks(5, 4), 2);
  EXPECT_EQ(NumChunks(100, 7), 15);
}

TEST_F(ParallelForTest, EmptyRangeNeverInvokes) {
  SetThreadCount(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  ParallelFor(7, 3, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  ParallelForChunks(0, [&](int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelForTest, SingleChunkRunsInlineOnce) {
  SetThreadCount(4);
  int calls = 0;
  int64_t lo = -1;
  int64_t hi = -1;
  ParallelFor(2, 7, 8, [&](int64_t b, int64_t e) {
    ++calls;
    lo = b;
    hi = e;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 7);
}

TEST_F(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 4}) {
    SetThreadCount(threads);
    constexpr int64_t kTotal = 1000;
    std::vector<std::atomic<int>> hits(kTotal);
    for (auto& h : hits) h.store(0);
    ParallelFor(0, kTotal, 7, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (int64_t i = 0; i < kTotal; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST_F(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  auto bounds_at = [](int threads) {
    SetThreadCount(threads);
    std::vector<std::pair<int64_t, int64_t>> bounds(NumChunks(103, 9));
    ParallelFor(0, 103, 9, [&](int64_t b, int64_t e) {
      bounds[static_cast<size_t>(b / 9)] = {b, e};
    });
    return bounds;
  };
  EXPECT_EQ(bounds_at(1), bounds_at(8));
}

TEST_F(ParallelForTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 8}) {
    SetThreadCount(threads);
    EXPECT_THROW(
        ParallelFor(0, 100, 1,
                    [&](int64_t b, int64_t) {
                      if (b == 37) throw std::runtime_error("chunk 37");
                    }),
        std::runtime_error);
  }
}

TEST_F(ParallelForTest, ExceptionAbortsRemainingChunks) {
  SetThreadCount(1);  // serial order makes "remaining" well-defined
  std::atomic<int> ran{0};
  EXPECT_THROW(ParallelForChunks(10,
                                 [&](int64_t c) {
                                   ran.fetch_add(1);
                                   if (c == 2) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 3);  // chunks 0..2 ran, 3..9 were aborted
}

TEST_F(ParallelForTest, NestedCallRunsSeriallyInside) {
  SetThreadCount(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> inner_total{0};
  ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    EXPECT_TRUE(InParallelRegion());
    // The nested loop must still cover its range (serially).
    ParallelFor(0, 10, 3,
                [&](int64_t b, int64_t e) {
                  inner_total.fetch_add(static_cast<int>(e - b));
                });
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(inner_total.load(), 80);
}

TEST_F(ParallelForTest, ManyMoreChunksThanThreadsCompletes) {
  SetThreadCount(8);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 10000, 3, [&](int64_t b, int64_t e) {
    int64_t local = 0;
    for (int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace eos::runtime
