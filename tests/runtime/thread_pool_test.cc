#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace eos::runtime {
namespace {

TEST(ThreadPoolTest, StartAndShutdownAtVariousSizes) {
  for (int workers : {0, 1, 2, 4}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.num_workers(), workers);
  }  // destructor joins cleanly with an empty queue
}

TEST(ThreadPoolTest, NegativeWorkerCountClampsToZero) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_workers(), 0);
}

TEST(ThreadPoolTest, SubmittedJobsAllRun) {
  constexpr int kJobs = 100;
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  {
    ThreadPool pool(3);
    for (int i = 0; i < kJobs; ++i) {
      pool.Submit([&] {
        if (count.fetch_add(1) + 1 == kJobs) {
          std::lock_guard<std::mutex> lock(mu);
          cv.notify_all();
        }
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return count.load() == kJobs; });
  }
  EXPECT_EQ(count.load(), kJobs);
}

TEST(ThreadPoolTest, DestructorDrainsPendingJobs) {
  // Jobs queued but not yet started must still run before join: ParallelFor
  // regions rely on late-dequeued helpers observing their shared state.
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SetThreadCountReconfiguresGlobalPool) {
  SetThreadCount(3);
  EXPECT_EQ(ThreadCount(), 3);
  EXPECT_EQ(GlobalPool().num_workers(), 2);
  SetThreadCount(1);
  EXPECT_EQ(ThreadCount(), 1);
  EXPECT_EQ(GlobalPool().num_workers(), 0);
  SetThreadCount(0);  // clamps
  EXPECT_EQ(ThreadCount(), 1);
}

TEST(ThreadPoolTest, ResolveDefaultHonorsEnvVar) {
  ASSERT_EQ(setenv("EOS_THREADS", "5", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveDefaultThreadCount(), 5);
  // Garbage and non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("EOS_THREADS", "zero", 1), 0);
  EXPECT_GE(ResolveDefaultThreadCount(), 1);
  ASSERT_EQ(setenv("EOS_THREADS", "-2", 1), 0);
  EXPECT_GE(ResolveDefaultThreadCount(), 1);
  ASSERT_EQ(unsetenv("EOS_THREADS"), 0);
  EXPECT_GE(ResolveDefaultThreadCount(), 1);
}

}  // namespace
}  // namespace eos::runtime
