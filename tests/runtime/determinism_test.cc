// Bitwise-reproducibility of the parallelized hot paths: every kernel wired
// onto src/runtime/ must produce identical bytes at EOS_THREADS=1 and 8.
// This is the enforcement point of the determinism contract in DESIGN.md.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "ml/knn.h"
#include "nn/conv2d.h"
#include "runtime/thread_pool.h"
#include "sampling/eos.h"
#include "sampling/smote.h"
#include "tensor/matmul.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(SameShape(a, b));
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

class DeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { runtime::SetThreadCount(4); }

  // Runs `compute` at 1 thread and at 8 threads and hands both results to
  // the caller for a bitwise comparison.
  template <typename Fn>
  static auto AtOneAndEight(Fn compute) {
    runtime::SetThreadCount(1);
    auto serial = compute();
    runtime::SetThreadCount(8);
    auto parallel = compute();
    return std::make_pair(std::move(serial), std::move(parallel));
  }
};

TEST_F(DeterminismTest, GemmRowBandedPaths) {
  Rng rng(11);
  Tensor a = Tensor::Uniform({65, 33}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({33, 41}, -1.0f, 1.0f, rng);
  auto [s_nn, p_nn] = AtOneAndEight([&] { return MatMul(a, b); });
  ExpectBitwiseEqual(s_nn, p_nn);
  Tensor at = Transpose2D(a);
  auto [s_tn, p_tn] = AtOneAndEight([&] { return MatMulTN(at, b); });
  ExpectBitwiseEqual(s_tn, p_tn);
  Tensor bt = Transpose2D(b);
  auto [s_nt, p_nt] = AtOneAndEight([&] { return MatMulNT(a, bt); });
  ExpectBitwiseEqual(s_nt, p_nt);
}

TEST_F(DeterminismTest, GemmTNKPartitionedPath) {
  // Small m, deep k selects the k-partitioned tile path in GemmTN.
  Rng rng(12);
  Tensor a = Tensor::Uniform({700, 4}, -1.0f, 1.0f, rng);  // [k, m]
  Tensor b = Tensor::Uniform({700, 6}, -1.0f, 1.0f, rng);  // [k, n]
  auto [serial, parallel] = AtOneAndEight([&] { return MatMulTN(a, b); });
  ExpectBitwiseEqual(serial, parallel);
}

TEST_F(DeterminismTest, ConvForwardAndBackward) {
  auto run = [] {
    Rng rng(21);  // recreated per run: identical weights at both settings
    nn::Conv2d conv(/*in=*/3, /*out=*/8, /*kernel=*/3, /*stride=*/1,
                    /*pad=*/1, /*bias=*/true, rng);
    Tensor x = Tensor::Uniform({6, 3, 10, 10}, -1.0f, 1.0f, rng);
    Tensor y = conv.Forward(x, /*training=*/true);
    Tensor dy = Tensor::Uniform(y.shape(), -1.0f, 1.0f, rng);
    Tensor dx = conv.Backward(dy);
    std::vector<nn::Parameter*> params;
    conv.CollectParameters(params);
    std::vector<Tensor> result = {y, dx};
    for (nn::Parameter* p : params) result.push_back(p->grad);
    return result;
  };
  auto [serial, parallel] = AtOneAndEight(run);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectBitwiseEqual(serial[i], parallel[i]);
  }
}

TEST_F(DeterminismTest, ElementwiseAndReductions) {
  Rng rng(31);
  Tensor a = Tensor::Uniform({100000}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({100000}, -1.0f, 1.0f, rng);
  auto [s_add, p_add] = AtOneAndEight([&] { return Add(a, b); });
  ExpectBitwiseEqual(s_add, p_add);
  auto [s_sum, p_sum] = AtOneAndEight([&] { return Sum(a); });
  EXPECT_EQ(s_sum, p_sum);
  auto [s_n2, p_n2] = AtOneAndEight([&] { return Norm2(a); });
  EXPECT_EQ(s_n2, p_n2);
  auto [s_sm, p_sm] = AtOneAndEight([&] {
    Tensor logits({500, 200});
    std::memcpy(logits.data(), a.data(),
                static_cast<size_t>(logits.numel()) * sizeof(float));
    return SoftmaxRows(logits);
  });
  ExpectBitwiseEqual(s_sm, p_sm);
}

TEST_F(DeterminismTest, KnnBatchedQueries) {
  Rng rng(41);
  Tensor points = Tensor::Uniform({300, 16}, -1.0f, 1.0f, rng);
  auto [serial, parallel] =
      AtOneAndEight([&] { return AllKNearestNeighbors(points, 7); });
  EXPECT_EQ(serial, parallel);
  KnnIndex index(points);
  std::vector<int64_t> rows = {0, 5, 17, 120, 299};
  auto [s_rows, p_rows] =
      AtOneAndEight([&] { return index.QueryRows(rows, 5); });
  EXPECT_EQ(s_rows, p_rows);
}

// Builds a 3-class imbalanced embedding set with overlapping class clouds so
// EOS finds borderline bases.
FeatureSet MakeImbalancedSet() {
  Rng rng(51);
  FeatureSet set;
  set.num_classes = 3;
  std::vector<int64_t> counts = {120, 40, 15};
  int64_t total = 175;
  set.features = Tensor({total, 8});
  int64_t row = 0;
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t i = 0; i < counts[static_cast<size_t>(c)]; ++i) {
      for (int64_t j = 0; j < 8; ++j) {
        set.features.at(row, j) =
            static_cast<float>(c) * 0.5f + rng.Normal(0.0f, 1.0f);
      }
      set.labels.push_back(c);
      ++row;
    }
  }
  return set;
}

TEST_F(DeterminismTest, EosOversamplingBitwise) {
  FeatureSet data = MakeImbalancedSet();
  auto run = [&] {
    Rng rng(61);  // recreated per run: same random draws at both settings
    ExpansiveOversampler eos_sampler(/*k_neighbors=*/5, EosMode::kConvex,
                                     /*max_step=*/0.5f);
    return eos_sampler.Resample(data, rng);
  };
  auto [serial, parallel] = AtOneAndEight(run);
  ExpectBitwiseEqual(serial.features, parallel.features);
  EXPECT_EQ(serial.labels, parallel.labels);
}

TEST_F(DeterminismTest, SmoteOversamplingBitwise) {
  FeatureSet data = MakeImbalancedSet();
  auto run = [&] {
    Rng rng(62);
    Smote smote(/*k_neighbors=*/5);
    return smote.Resample(data, rng);
  };
  auto [serial, parallel] = AtOneAndEight(run);
  ExpectBitwiseEqual(serial.features, parallel.features);
  EXPECT_EQ(serial.labels, parallel.labels);
}

}  // namespace
}  // namespace eos
