#include "lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

/// Tests for the in-repo determinism linter (tools/lint): rule hits with
/// exact counts and file:line output format, path-scoped exemptions,
/// comment/string stripping, and `lint:allow` suppressions. The known-bad
/// snippets live in tests/tools/lint_fixtures/ (data, never compiled) and
/// mimic a miniature source root.

namespace eos::lint {
namespace {

std::vector<std::string> Formatted(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& finding : findings) {
    out.push_back(FormatFinding(finding));
  }
  return out;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---------------------------------------------------------------- stripping

TEST(StripTest, PreservesLineStructure) {
  std::string source = "int a; // rand()\nint b; /* time( */ int c;\n";
  std::string stripped = StripCommentsAndStrings(source);
  EXPECT_EQ(stripped.size(), source.size());
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 2);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int c;"), std::string::npos);
}

TEST(StripTest, BlanksStringAndCharLiterals) {
  std::string stripped = StripCommentsAndStrings(
      "auto s = \"new int\"; char c = 'n'; int keep = 1;");
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_NE(stripped.find("keep"), std::string::npos);
}

TEST(StripTest, HandlesEscapedQuotesAndRawStrings) {
  std::string stripped = StripCommentsAndStrings(
      "auto a = \"say \\\"rand()\\\"\";\n"
      "auto b = R\"x(delete everything)x\";\n"
      "int live = 1;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("delete"), std::string::npos);
  EXPECT_NE(stripped.find("live"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 3);
}

TEST(StripTest, MultiLineBlockCommentKeepsNewlines) {
  std::string stripped =
      StripCommentsAndStrings("/* line one rand()\n   line two */\nint x;\n");
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 3);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
}

// -------------------------------------------------------------- rule logic

TEST(LintFileTest, FlagsBannedRngWithExactLines) {
  std::vector<Finding> findings =
      LintFile("core/x.cc", "int f() {\n  return rand();\n}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-rng");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintFileTest, RandTokenRequiresCall) {
  // `rand` as a plain identifier or a prefix/suffix of one is not a call.
  std::vector<Finding> findings = LintFile(
      "core/x.cc", "int operand = 1;\nint rand_count = operand;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFileTest, TimeTokenIgnoresMembersLikeEnqueueTime) {
  std::vector<Finding> findings = LintFile(
      "core/x.cc", "struct R { int enqueue_time; };\n"
                   "int f(R r) { return r.enqueue_time + 1; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFileTest, ServePathAndStopwatchAreExemptFromRngRule) {
  std::string source = "long f() { return time(nullptr); }\n";
  EXPECT_TRUE(LintFile("serve/x.cc", source).empty());
  EXPECT_TRUE(LintFile("common/stopwatch.h", source).empty());
  EXPECT_EQ(LintFile("common/other.h", source).size(), 1u);
}

TEST(LintFileTest, FlagsDrand48AndRawMt19937Engines) {
  std::vector<Finding> findings = LintFile(
      "core/x.cc",
      "#include <random>\n"
      "double f() {\n"
      "  std::mt19937 gen(1);\n"
      "  std::mt19937_64 gen64(1);\n"
      "  srand48(9);\n"
      "  return drand48() + gen() + gen64();\n"
      "}\n");
  // mt19937, mt19937_64, srand48, drand48 — the engine *names* are flagged
  // once each; calls through the resulting objects are not re-flagged.
  EXPECT_EQ(CountRule(findings, "banned-rng"), 4);
}

TEST(LintFileTest, Mt19937PrefixOfOtherIdentifiersIsNotFlagged) {
  // Token matching is word-bounded: an identifier that merely contains the
  // engine name is fine, and drand48 must be a call.
  std::vector<Finding> findings = LintFile(
      "core/x.cc", "int mt19937_like = 1;\nint drand48_count = 2;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFileTest, RelaxedProfileKeepsReproducibilityRulesOnly) {
  std::string source =
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "int* leak() { return new int(rand()); }\n"
      "#include <unordered_map>\n";
  std::vector<Finding> strict =
      LintFile("sampling/x.cc", source, Profile::kStrict);
  std::vector<Finding> relaxed =
      LintFile("sampling/x.cc", source, Profile::kRelaxed);
  EXPECT_EQ(CountRule(strict, "banned-rng"), 1);
  EXPECT_EQ(CountRule(strict, "naked-new"), 1);
  EXPECT_EQ(CountRule(strict, "unordered-container"), 1);
  EXPECT_EQ(CountRule(strict, "mutex-annotations"), 1);
  EXPECT_EQ(CountRule(relaxed, "banned-rng"), 1);
  EXPECT_EQ(CountRule(relaxed, "mutex-annotations"), 1);
  EXPECT_EQ(CountRule(relaxed, "naked-new"), 0);
  EXPECT_EQ(CountRule(relaxed, "unordered-container"), 0);
  EXPECT_EQ(CountRule(relaxed, "void-cast-needs-comment"), 0);
}

TEST(LintFileTest, UnorderedContainersOnlyFlaggedInDeterministicPaths) {
  std::string source = "#include <unordered_map>\n";
  EXPECT_EQ(LintFile("sampling/x.cc", source).size(), 1u);
  EXPECT_EQ(LintFile("core/x.cc", source).size(), 1u);
  EXPECT_EQ(LintFile("metrics/x.cc", source).size(), 1u);
  EXPECT_TRUE(LintFile("nn/x.cc", source).empty());
}

TEST(LintFileTest, NakedNewAndDeleteButNotDeletedFunctions) {
  std::vector<Finding> findings = LintFile(
      "nn/x.cc",
      "struct S { S(const S&) = delete; };\n"
      "int* f() { return new int(1); }\n"
      "void g(int* p) { delete p; }\n");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(findings[1].line, 3);
  EXPECT_EQ(CountRule(findings, "naked-new"), 2);
}

TEST(LintFileTest, MutexWithoutAnnotationsHeaderFlaggedOnce) {
  std::vector<Finding> findings = LintFile(
      "nn/x.cc", "#include <mutex>\nstd::mutex a;\nstd::mutex b;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "mutex-annotations");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintFileTest, MutexWithAnnotationsHeaderIsClean) {
  std::vector<Finding> findings = LintFile(
      "nn/x.cc",
      "#include <mutex>\n#include \"common/thread_annotations.h\"\n"
      "std::mutex a;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFileTest, VoidCastCallNeedsSameLineComment) {
  std::vector<Finding> findings = LintFile(
      "nn/x.cc",
      "void f(int unused) {\n"
      "  (void)DoThing();\n"
      "  (void)DoThing();  // reason: exercised error path\n"
      "  (void)unused;\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "void-cast-needs-comment");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintFileTest, SuppressionOnSameOrPreviousLine) {
  EXPECT_TRUE(LintFile("nn/x.cc",
                       "int* f() {\n"
                       "  return new int(1);  // lint:allow(naked-new) leak\n"
                       "}\n")
                  .empty());
  EXPECT_TRUE(LintFile("nn/x.cc",
                       "int* f() {\n"
                       "  // lint:allow(naked-new)\n"
                       "  return new int(1);\n"
                       "}\n")
                  .empty());
  // A marker for a different rule does not suppress.
  EXPECT_EQ(LintFile("nn/x.cc",
                     "int* f() {\n"
                     "  // lint:allow(banned-rng)\n"
                     "  return new int(1);\n"
                     "}\n")
                .size(),
            1u);
}

TEST(LintFileTest, TokensInsideCommentsAndStringsAreIgnored) {
  std::vector<Finding> findings = LintFile(
      "core/x.cc",
      "// rand() time( system_clock new delete\n"
      "const char* s = \"std::random_device\";\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- output format

TEST(FormatTest, FileLineRuleMessage) {
  Finding finding{"serve/server.cc", 42, "banned-rng", "no entropy here"};
  EXPECT_EQ(FormatFinding(finding),
            "serve/server.cc:42: [banned-rng] no entropy here");
}

// ------------------------------------------------------------ tree walker

TEST(LintTreeTest, FixtureTreeProducesExactFindings) {
  Result<std::vector<Finding>> result = LintTree(EOS_LINT_FIXTURE_DIR);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::vector<Finding>& findings = *result;

  EXPECT_EQ(findings.size(), 16u);
  EXPECT_EQ(CountRule(findings, "banned-rng"), 8);
  EXPECT_EQ(CountRule(findings, "naked-new"), 2);
  EXPECT_EQ(CountRule(findings, "void-cast-needs-comment"), 1);
  EXPECT_EQ(CountRule(findings, "mutex-annotations"), 1);
  EXPECT_EQ(CountRule(findings, "unordered-container"), 4);

  std::vector<std::string> formatted = Formatted(findings);
  auto contains = [&](const std::string& prefix) {
    return std::any_of(formatted.begin(), formatted.end(),
                       [&](const std::string& line) {
                         return line.compare(0, prefix.size(), prefix) == 0;
                       });
  };
  EXPECT_TRUE(contains("bad/rng.cc:8: [banned-rng]"));
  EXPECT_TRUE(contains("bad/rng.cc:9: [banned-rng]"));
  EXPECT_TRUE(contains("bad/rng.cc:10: [banned-rng]"));
  EXPECT_TRUE(contains("bad/rng.cc:11: [banned-rng]"));
  EXPECT_TRUE(contains("bad/rng.cc:12: [banned-rng]"));  // drand48
  EXPECT_TRUE(contains("bad/rng.cc:13: [banned-rng]"));  // srand48
  EXPECT_TRUE(contains("bad/rng.cc:14: [banned-rng]"));  // mt19937
  EXPECT_TRUE(contains("bad/rng.cc:15: [banned-rng]"));  // mt19937_64
  EXPECT_TRUE(contains("bad/naked_new.cc:8: [naked-new]"));
  EXPECT_TRUE(contains("bad/naked_new.cc:9: [naked-new]"));
  EXPECT_TRUE(contains("bad/dropped_status.cc:5: [void-cast-needs-comment]"));
  EXPECT_TRUE(contains("bad/unannotated_mutex.cc:7: [mutex-annotations]"));
  EXPECT_TRUE(contains("sampling/uses_unordered.cc:3: [unordered-container]"));
  EXPECT_TRUE(contains("sampling/uses_unordered.cc:7: [unordered-container]"));

  // Exempt paths contribute nothing.
  for (const Finding& finding : findings) {
    EXPECT_NE(finding.path, "serve/uses_clock.cc");
    EXPECT_NE(finding.path, "common/stopwatch.h");
    EXPECT_NE(finding.path, "good/clean.cc");
  }
}

TEST(LintTreeTest, RelaxedProfileDropsStyleRulesOnFixtures) {
  Result<std::vector<Finding>> result =
      LintTree(EOS_LINT_FIXTURE_DIR, Profile::kRelaxed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CountRule(*result, "banned-rng"), 8);
  EXPECT_EQ(CountRule(*result, "mutex-annotations"), 1);
  EXPECT_EQ(CountRule(*result, "naked-new"), 0);
  EXPECT_EQ(CountRule(*result, "unordered-container"), 0);
  EXPECT_EQ(CountRule(*result, "void-cast-needs-comment"), 0);
}

TEST(LintTreeTest, LintFixtureDirectoriesAreSkippedWhenNotTheRoot) {
  // Linting the PARENT of the fixture tree (tests/tools/) must not surface
  // the deliberately-bad fixture files — they are linter test data.
  Result<std::vector<Finding>> result =
      LintTree(std::string(EOS_LINT_FIXTURE_DIR) + "/..");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const Finding& finding : *result) {
    EXPECT_EQ(finding.path.find("lint_fixtures"), std::string::npos)
        << FormatFinding(finding);
  }
}

TEST(LintTreeTest, DeterministicAcrossRuns) {
  Result<std::vector<Finding>> first = LintTree(EOS_LINT_FIXTURE_DIR);
  Result<std::vector<Finding>> second = LintTree(EOS_LINT_FIXTURE_DIR);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Formatted(*first), Formatted(*second));
}

TEST(LintTreeTest, MissingRootIsNotFound) {
  Result<std::vector<Finding>> result =
      LintTree("/nonexistent/lint/fixture/root");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace eos::lint
