// Fixture: banned tokens inside comments and string literals must never
// trip a rule: rand() time() system_clock new delete std::unordered_map
#include <string>

std::string Fixture() {
  std::string s = "rand() and new and delete and time(nullptr)";
  std::string raw = R"lint(std::random_device inside a raw string)lint";
  return s + raw;
}
