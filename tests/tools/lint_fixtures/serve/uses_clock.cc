// Fixture: serve/ may timestamp real traffic with wall clocks (exempt).
#include <chrono>
#include <ctime>

long Fixture() {
  auto now = std::chrono::system_clock::now();
  return static_cast<long>(time(nullptr)) +
         static_cast<long>(now.time_since_epoch().count());
}
