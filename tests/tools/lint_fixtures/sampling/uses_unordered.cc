// Fixture: iteration-order-dependent containers in a deterministic path
// (the includes count too: presence in sampling/ is the violation).
#include <unordered_map>
#include <unordered_set>

int Fixture() {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
  counts[1] = 2;
  seen.insert(3);
  return static_cast<int>(counts.size() + seen.size());
}
