// Fixture: a guarded class that forgot common/thread_annotations.h.
#include <mutex>

class Counter {
 public:
  void Add(int d) {
    std::lock_guard<std::mutex> lock(mu_);
    total_ += d;
  }

 private:
  std::mutex mu_;
  int total_ = 0;
};
