// Fixture: dropped-Status patterns around the (void) escape hatch.
int DoThing();

void Fixture(int unused) {
  (void)DoThing();
  (void)DoThing();  // justified: fixture exercises the commented path
  (void)unused;
}
