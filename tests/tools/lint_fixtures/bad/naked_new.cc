// Fixture: naked allocation (two findings); a deleted special member and
// a suppressed allocation must not be flagged.
struct Widget {
  Widget(const Widget&) = delete;
};

int* Fixture() {
  int* p = new int(7);
  delete p;
  // lint:allow(naked-new)
  int* q = new int(9);
  return q;
}
