// Fixture: every banned entropy / wall-clock source (see lint.h).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int Fixture() {
  int a = rand();
  std::random_device rd;
  long t = time(nullptr);
  auto now = std::chrono::system_clock::now();
  long ticks = static_cast<long>(now.time_since_epoch().count());
  return a + static_cast<int>(rd()) + static_cast<int>(t + ticks);
}
