// Fixture: every banned entropy / wall-clock source (see lint.h).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int Fixture() {
  int a = rand();
  std::random_device rd;
  long t = time(nullptr);
  auto now = std::chrono::system_clock::now();
  double d = drand48();
  srand48(42);
  std::mt19937 engine(7);
  std::mt19937_64 wide_engine(7);
  long ticks = static_cast<long>(now.time_since_epoch().count());
  return a + static_cast<int>(rd()) + static_cast<int>(t + ticks) +
         static_cast<int>(d + engine() % 2 + wide_engine() % 2);
}
