// Fixture: the sanctioned clock wrapper is allowed to touch time().
#include <ctime>

inline long FixtureNow() { return static_cast<long>(time(nullptr)); }
