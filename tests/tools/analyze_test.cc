#include "analyze.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

/// Tests for the architecture analyzer (tools/analyze): layering-DAG
/// enforcement, include-cycle detection, the IWYU-lite unused-include pass,
/// and the lock-annotation registry — each against a seeded mini source
/// tree in tests/tools/analyze_fixtures/ (data, never compiled) with exact
/// finding counts and `file:line` output format, mirroring the linter's
/// fixture tests.

namespace eos::analyze {
namespace {

std::vector<Layer> FixtureLayers() { return {{"alpha", 0}, {"beta", 1}}; }

Result<TreeGraph> LoadFixtures() { return ScanTree(EOS_ANALYZE_FIXTURE_DIR); }

std::vector<std::string> Formatted(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  for (const Finding& finding : findings) {
    out.push_back(scan::FormatFinding(finding));
  }
  return out;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

bool AnyWithPrefix(const std::vector<std::string>& lines,
                   const std::string& prefix) {
  return std::any_of(lines.begin(), lines.end(), [&](const std::string& line) {
    return line.compare(0, prefix.size(), prefix) == 0;
  });
}

// ------------------------------------------------------------ tree loading

TEST(ScanTreeTest, ParsesEveryIncludeEdge) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->files.size(), 8u);
  // Project edges: inverted->top, top->base, cycle_a->cycle_b,
  // cycle_b->cycle_a, unused->{top, base, cycle_a}, stray->base; plus the
  // <mutex> system edge from locks.cc.
  int project = 0;
  int system = 0;
  for (const IncludeEdge& edge : graph->edges) {
    (edge.system ? system : project)++;
  }
  EXPECT_EQ(project, 8);
  EXPECT_EQ(system, 1);
}

TEST(ScanTreeTest, MissingRootIsNotFound) {
  Result<TreeGraph> graph = ScanTree("/nonexistent/analyze/fixture/root");
  ASSERT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kNotFound);
}

TEST(ModuleOfTest, FirstPathSegment) {
  EXPECT_EQ(ModuleOf("serve/server.h"), "serve");
  EXPECT_EQ(ModuleOf("common/check.h"), "common");
  EXPECT_EQ(ModuleOf("toplevel.h"), "");
}

// ---------------------------------------------------------------- layering

TEST(CheckLayeringTest, FlagsInversionAndUnknownModuleWithExactLines) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings = CheckLayering(*graph, FixtureLayers());
  ASSERT_EQ(findings.size(), 2u);
  std::vector<std::string> formatted = Formatted(findings);
  // alpha (rank 0) including beta (rank 1) is the seeded inversion; gamma
  // is the seeded undeclared module. Legal downward edges (beta -> alpha)
  // and intra-module edges (the cycle pair) contribute nothing.
  EXPECT_TRUE(AnyWithPrefix(formatted, "alpha/inverted.h:4: [layering]"));
  EXPECT_TRUE(AnyWithPrefix(formatted, "gamma/stray.h:4: [layering]"));
}

TEST(CheckLayeringTest, DeclaredRanksMakeTheFixtureInversionLegal) {
  // Flipping the ranks legalizes alpha -> beta (and outlaws beta -> alpha):
  // the pass enforces exactly the declared DAG, nothing hard-coded.
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings =
      CheckLayering(*graph, {{"alpha", 1}, {"beta", 0}, {"gamma", 2}});
  std::vector<std::string> formatted = Formatted(findings);
  EXPECT_FALSE(AnyWithPrefix(formatted, "alpha/inverted.h"));
  EXPECT_FALSE(AnyWithPrefix(formatted, "gamma/stray.h"));
  // beta/top.h and beta/unused.cc now both reach UP into alpha.
  EXPECT_EQ(CountRule(findings, "layering"), 2);
}

TEST(CheckLayeringTest, DefaultLayersAreUniqueAndAcyclicByConstruction) {
  std::vector<Layer> layers = DefaultLayers();
  ASSERT_FALSE(layers.empty());
  std::vector<std::string> modules;
  for (const Layer& layer : layers) {
    modules.push_back(layer.module);
    EXPECT_GE(layer.rank, 0) << layer.module;
  }
  std::sort(modules.begin(), modules.end());
  EXPECT_TRUE(std::adjacent_find(modules.begin(), modules.end()) ==
              modules.end())
      << "duplicate module in DefaultLayers()";
  // The modules the repo actually has must all be declared.
  for (const char* required :
       {"common", "runtime", "tensor", "serve", "sampling", "core"}) {
    EXPECT_TRUE(std::find(modules.begin(), modules.end(), required) !=
                modules.end())
        << required;
  }
}

// ------------------------------------------------------------------ cycles

TEST(CheckIncludeCyclesTest, ReportsTheSeededCycleOnce) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings = CheckIncludeCycles(*graph);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  // Anchored at the directive that closes the cycle, deduplicated across
  // the two traversal entry points.
  EXPECT_EQ(findings[0].path, "beta/cycle_b.h");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("beta/cycle_a.h"), std::string::npos);
}

// --------------------------------------------------------- unused includes

TEST(CheckUnusedIncludesTest, FlagsOnlyTheSeededUnusedInclude) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings = CheckUnusedIncludes(*graph);
  // beta/unused.cc includes alpha/base.h without referencing AlphaBase.
  // Everything else is kept: used exports (BetaTop, CycleA/CycleB), the
  // <mutex> system include (its tokens are referenced), and the
  // lint:allow(unused-include)-suppressed cycle_a include.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(scan::FormatFinding(findings[0]).substr(0, 36),
            "beta/unused.cc:3: [unused-include] n");
}

// -------------------------------------------------------------- lock passes

TEST(BuildLockRegistryTest, InventoriesTheFixtureMutex) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<LockSite> registry = BuildLockRegistry(*graph);
  ASSERT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry[0].path, "beta/locks.cc");
  EXPECT_EQ(registry[0].line, 4);
  EXPECT_EQ(registry[0].name, "g_cache_mu");
  EXPECT_EQ(registry[0].type, "std::mutex");
  EXPECT_EQ(registry[0].annotation_refs, 0);
}

TEST(CheckLockAnnotationsTest, FlagsTheUnannotatedMutex) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings = CheckLockAnnotations(*graph);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unannotated-mutex");
  EXPECT_EQ(findings[0].path, "beta/locks.cc");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("g_cache_mu"), std::string::npos);
}

// ------------------------------------------------------------- whole tree

TEST(AnalyzeTreeTest, FixtureTreeProducesExactFindings) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Finding> findings = AnalyzeTree(*graph, FixtureLayers());
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_EQ(CountRule(findings, "layering"), 2);
  EXPECT_EQ(CountRule(findings, "include-cycle"), 1);
  EXPECT_EQ(CountRule(findings, "unused-include"), 1);
  EXPECT_EQ(CountRule(findings, "unannotated-mutex"), 1);
  // Merged output is sorted by (path, line, rule).
  std::vector<Finding> sorted = findings;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  EXPECT_EQ(Formatted(findings), Formatted(sorted));
}

TEST(AnalyzeTreeTest, DeterministicAcrossRuns) {
  Result<TreeGraph> first = LoadFixtures();
  Result<TreeGraph> second = LoadFixtures();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(Formatted(AnalyzeTree(*first, FixtureLayers())),
            Formatted(AnalyzeTree(*second, FixtureLayers())));
}

TEST(AnalyzeTreeTest, AnalyzeFixtureDirectoriesAreSkippedWhenNotTheRoot) {
  // Scanning the PARENT of the fixture tree (tests/tools/) must not surface
  // the deliberately-broken fixtures — they are analyzer test data.
  Result<TreeGraph> graph =
      ScanTree(std::string(EOS_ANALYZE_FIXTURE_DIR) + "/..");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  for (const scan::SourceFile& file : graph->files) {
    EXPECT_EQ(file.path.find("analyze_fixtures"), std::string::npos)
        << file.path;
    EXPECT_EQ(file.path.find("lint_fixtures"), std::string::npos) << file.path;
  }
}

// ------------------------------------------------------------------ output

TEST(EmitTest, DotListsEveryDeclaredModuleAndCrossModuleEdge) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::string dot = LayeringDot(*graph, FixtureLayers());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"alpha\""), std::string::npos);
  EXPECT_NE(dot.find("\"beta\""), std::string::npos);
  EXPECT_NE(dot.find("\"beta\" -> \"alpha\""), std::string::npos);
}

TEST(EmitTest, JsonCarriesLayersEdgesAndLockRegistry) {
  Result<TreeGraph> graph = LoadFixtures();
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::string json = AnalysisJson(*graph, FixtureLayers());
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_NE(json.find("\"module_edges\""), std::string::npos);
  EXPECT_NE(json.find("\"locks\""), std::string::npos);
  EXPECT_NE(json.find("g_cache_mu"), std::string::npos);
}

}  // namespace
}  // namespace eos::analyze
