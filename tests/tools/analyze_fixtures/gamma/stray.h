#ifndef GAMMA_STRAY_H_
#define GAMMA_STRAY_H_

#include "alpha/base.h"

// Seeded unknown module: "gamma" has no rank in the test layer DAG, so its
// one cross-module include must be reported.
inline int StrayValue(const AlphaBase& base) { return base.value; }

#endif  // GAMMA_STRAY_H_
