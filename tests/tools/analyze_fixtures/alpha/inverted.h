#ifndef ALPHA_INVERTED_H_
#define ALPHA_INVERTED_H_

#include "beta/top.h"

// Seeded layering violation: alpha (rank 0) reaching UP into beta (rank 1).
inline int InvertedRank(const BetaTop& top) { return top.level; }

#endif  // ALPHA_INVERTED_H_
