#ifndef ALPHA_BASE_H_
#define ALPHA_BASE_H_

// Bottom-layer fixture: exports AlphaBase, includes nothing.
struct AlphaBase {
  int value = 0;
};

#endif  // ALPHA_BASE_H_
