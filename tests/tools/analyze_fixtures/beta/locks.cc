#include <mutex>

namespace {
std::mutex g_cache_mu;
}  // namespace

// Seeded unannotated mutex: g_cache_mu is declared but no GUARDED_BY /
// REQUIRES / ... annotation in this file ever names it.
int Locked() {
  std::lock_guard<std::mutex> lock(g_cache_mu);
  return 1;
}
