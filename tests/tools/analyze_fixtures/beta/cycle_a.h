#ifndef BETA_CYCLE_A_H_
#define BETA_CYCLE_A_H_

#include "beta/cycle_b.h"

// Half of a seeded intra-module include cycle (layering stays silent on
// same-module edges; only the cycle pass can catch this).
struct CycleA {
  CycleB* peer = nullptr;
};

#endif  // BETA_CYCLE_A_H_
