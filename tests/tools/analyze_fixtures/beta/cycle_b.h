#ifndef BETA_CYCLE_B_H_
#define BETA_CYCLE_B_H_

#include "beta/cycle_a.h"

// The other half of the seeded include cycle.
struct CycleB {
  CycleA* owner = nullptr;
};

#endif  // BETA_CYCLE_B_H_
