#ifndef BETA_TOP_H_
#define BETA_TOP_H_

#include "alpha/base.h"

// Legal downward include: beta (rank 1) depending on alpha (rank 0).
struct BetaTop {
  AlphaBase base;
  int level = 1;
};

#endif  // BETA_TOP_H_
