#include "beta/top.h"

#include "alpha/base.h"
#include "beta/cycle_a.h"  // lint:allow(unused-include) kept as suppression fixture

// "alpha/base.h" is the seeded unused include: nothing it exports
// (AlphaBase) is referenced below. "beta/top.h" is used (BetaTop) and the
// cycle_a include is annotated away.
int Level(const BetaTop& top) { return top.level; }
