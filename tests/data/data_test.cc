#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/batcher.h"
#include "data/dataset.h"
#include "data/imbalance.h"
#include "data/transforms.h"

namespace eos {
namespace {

Dataset TinyDataset() {
  Dataset d;
  d.images = Tensor({6, 1, 2, 2});
  for (int64_t i = 0; i < d.images.numel(); ++i) {
    d.images.data()[i] = static_cast<float>(i);
  }
  d.labels = {0, 1, 0, 2, 1, 0};
  d.num_classes = 3;
  return d;
}

TEST(DatasetTest, ClassCountsAndIndices) {
  Dataset d = TinyDataset();
  auto counts = d.ClassCounts();
  EXPECT_EQ(counts, (std::vector<int64_t>{3, 2, 1}));
  EXPECT_EQ(d.ClassIndices(0), (std::vector<int64_t>{0, 2, 5}));
  EXPECT_EQ(d.ClassIndices(2), (std::vector<int64_t>{3}));
}

TEST(DatasetTest, SelectExamplesKeepsAlignment) {
  Dataset d = TinyDataset();
  Dataset s = SelectExamples(d, {3, 0});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.labels[0], 2);
  EXPECT_EQ(s.labels[1], 0);
  // Image 3 starts at flat offset 12.
  EXPECT_EQ(s.images.at(0, 0, 0, 0), 12.0f);
}

TEST(DatasetTest, ShuffleKeepsImageLabelPairs) {
  Dataset d = TinyDataset();
  // Tag: image's first pixel equals 4 * original index; remember pairing.
  Rng rng(3);
  ShuffleDataset(d, rng);
  EXPECT_EQ(d.size(), 6);
  std::vector<int64_t> original_labels = {0, 1, 0, 2, 1, 0};
  for (int64_t i = 0; i < d.size(); ++i) {
    int64_t orig = static_cast<int64_t>(d.images.at(i, 0, 0, 0)) / 4;
    EXPECT_EQ(d.labels[static_cast<size_t>(i)],
              original_labels[static_cast<size_t>(orig)]);
  }
}

TEST(FeatureSetTest, CountsAndSelect) {
  FeatureSet f;
  f.features = Tensor::FromVector({4, 2}, {0, 0, 1, 1, 2, 2, 3, 3});
  f.labels = {1, 0, 1, 1};
  f.num_classes = 2;
  EXPECT_EQ(f.ClassCounts(), (std::vector<int64_t>{1, 3}));
  FeatureSet s = SelectFeatures(f, {2, 1});
  EXPECT_EQ(s.labels, (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(s.features.at(0, 0), 2.0f);
}

TEST(ImbalanceTest, ExponentialProfile) {
  auto counts = ImbalancedCounts(10, 1000, 100.0, ImbalanceType::kExponential);
  EXPECT_EQ(counts[0], 1000);
  EXPECT_EQ(counts[9], 10);
  // Monotone decreasing.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_LE(counts[i], counts[i - 1]);
  }
  EXPECT_NEAR(RealizedImbalanceRatio(counts), 100.0, 1.0);
}

TEST(ImbalanceTest, ExponentialIntermediateFollowsPowerLaw) {
  auto counts = ImbalancedCounts(11, 10000, 100.0,
                                 ImbalanceType::kExponential);
  // Halfway class should be at sqrt(1/100) = 1/10 of max.
  EXPECT_NEAR(static_cast<double>(counts[5]), 1000.0, 10.0);
}

TEST(ImbalanceTest, StepProfile) {
  auto counts = ImbalancedCounts(6, 100, 10.0, ImbalanceType::kStep);
  EXPECT_EQ(counts, (std::vector<int64_t>{100, 100, 100, 10, 10, 10}));
}

TEST(ImbalanceTest, CountsNeverBelowOne) {
  auto counts = ImbalancedCounts(10, 5, 100.0, ImbalanceType::kExponential);
  for (int64_t c : counts) EXPECT_GE(c, 1);
}

TEST(ImbalanceTest, RatioOneIsBalanced) {
  auto counts = ImbalancedCounts(4, 50, 1.0, ImbalanceType::kExponential);
  for (int64_t c : counts) EXPECT_EQ(c, 50);
}

TEST(BatcherTest, CoversAllIndicesOnce) {
  Rng rng(1);
  auto batches = MakeBatches(10, 3, &rng);
  EXPECT_EQ(batches.size(), 4u);
  std::set<int64_t> seen;
  for (const auto& b : batches) {
    for (int64_t i : b) seen.insert(i);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(batches.back().size(), 1u);
}

TEST(BatcherTest, NoRngPreservesOrder) {
  auto batches = MakeBatches(5, 2, nullptr);
  EXPECT_EQ(batches[0], (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(batches[2], (std::vector<int64_t>{4}));
}

TEST(BatcherTest, BalancedBatchesEqualizeClassMass) {
  Rng rng(2);
  std::vector<int64_t> labels;
  for (int i = 0; i < 90; ++i) labels.push_back(0);
  for (int i = 0; i < 10; ++i) labels.push_back(1);
  auto batches = MakeBalancedBatches(labels, 2, 16, rng);
  int64_t count0 = 0;
  int64_t count1 = 0;
  for (const auto& b : batches) {
    for (int64_t i : b) {
      if (labels[static_cast<size_t>(i)] == 0) {
        ++count0;
      } else {
        ++count1;
      }
    }
  }
  EXPECT_EQ(count0, count1);
  EXPECT_EQ(count0, 90);  // minority upsampled to majority size
}

TEST(StratifiedSplitTest, PreservesPerClassFractions) {
  Dataset d;
  d.num_classes = 3;
  d.images = Tensor({100, 1, 2, 2});
  for (int i = 0; i < 60; ++i) d.labels.push_back(0);
  for (int i = 0; i < 30; ++i) d.labels.push_back(1);
  for (int i = 0; i < 10; ++i) d.labels.push_back(2);
  Rng rng(5);
  DatasetSplit split = StratifiedSplit(d, 0.8, rng);
  auto first = split.first.ClassCounts();
  auto second = split.second.ClassCounts();
  EXPECT_EQ(first[0], 48);
  EXPECT_EQ(second[0], 12);
  EXPECT_EQ(first[1], 24);
  EXPECT_EQ(second[1], 6);
  EXPECT_EQ(first[2], 8);
  EXPECT_EQ(second[2], 2);
  EXPECT_EQ(split.first.size() + split.second.size(), d.size());
}

TEST(StratifiedSplitTest, TinyClassesOnBothSides) {
  Dataset d;
  d.num_classes = 2;
  d.images = Tensor({22, 1, 1, 1});
  for (int i = 0; i < 20; ++i) d.labels.push_back(0);
  d.labels.push_back(1);
  d.labels.push_back(1);
  Rng rng(6);
  DatasetSplit split = StratifiedSplit(d, 0.9, rng);
  // Class 1 has 2 members: one must land on each side despite 0.9.
  EXPECT_EQ(split.first.ClassCounts()[1], 1);
  EXPECT_EQ(split.second.ClassCounts()[1], 1);
}

TEST(StratifiedSplitTest, NoRowDuplicatedOrLost) {
  Dataset d;
  d.num_classes = 2;
  d.images = Tensor({10, 1, 1, 1});
  for (int64_t i = 0; i < 10; ++i) {
    d.images.data()[i] = static_cast<float>(i);
    d.labels.push_back(i % 2);
  }
  Rng rng(7);
  DatasetSplit split = StratifiedSplit(d, 0.5, rng);
  std::multiset<float> seen;
  for (int64_t i = 0; i < split.first.size(); ++i) {
    seen.insert(split.first.images.data()[i]);
  }
  for (int64_t i = 0; i < split.second.size(); ++i) {
    seen.insert(split.second.images.data()[i]);
  }
  ASSERT_EQ(seen.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seen.count(static_cast<float>(i)), 1u);
  }
}

TEST(TransformsTest, NormalizeProducesZeroMeanUnitStd) {
  Rng rng(3);
  Tensor images = Tensor::Uniform({20, 3, 8, 8}, 0.0f, 1.0f, rng);
  ChannelStats stats = ComputeChannelStats(images);
  NormalizeChannels(images, stats);
  ChannelStats after = ComputeChannelStats(images);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(after.mean[static_cast<size_t>(c)], 0.0f, 1e-4f);
    EXPECT_NEAR(after.stddev[static_cast<size_t>(c)], 1.0f, 1e-3f);
  }
}

TEST(TransformsTest, RandomCropPreservesShapeAndValues) {
  Rng rng(4);
  Tensor batch = Tensor::Uniform({4, 3, 8, 8}, 0.0f, 1.0f, rng);
  auto shape = batch.shape();
  Tensor before = batch.Clone();
  RandomCrop(batch, 1, rng);
  EXPECT_EQ(batch.shape(), shape);
  // Reflection padding only rearranges values from the original image:
  // every value in the crop must appear in the original image.
  std::multiset<float> pool(before.data(), before.data() + before.numel());
  for (int64_t i = 0; i < batch.numel(); ++i) {
    ASSERT_TRUE(pool.count(batch.data()[i]) > 0);
  }
}

TEST(TransformsTest, FlipReversesRows) {
  // With a seed that flips the single image, rows must reverse.
  Tensor batch({1, 1, 1, 4});
  batch.data()[0] = 1;
  batch.data()[1] = 2;
  batch.data()[2] = 3;
  batch.data()[3] = 4;
  // Find a seed whose first Bernoulli(0.5) is true.
  for (uint64_t seed = 0; seed < 32; ++seed) {
    Rng probe(seed);
    if (probe.Bernoulli(0.5)) {
      Rng rng(seed);
      RandomHorizontalFlip(batch, rng);
      EXPECT_EQ(batch.data()[0], 4.0f);
      EXPECT_EQ(batch.data()[3], 1.0f);
      return;
    }
  }
  FAIL() << "no flipping seed found";
}

TEST(TransformsTest, FlipTwiceIsIdentity) {
  Rng rng1(7);
  Rng rng2(7);
  Tensor batch = Tensor::Uniform({3, 2, 4, 4}, 0.0f, 1.0f, rng1);
  Tensor before = batch.Clone();
  Rng flip_rng(11);
  RandomHorizontalFlip(batch, flip_rng);
  Rng flip_rng2(11);
  RandomHorizontalFlip(batch, flip_rng2);
  for (int64_t i = 0; i < batch.numel(); ++i) {
    ASSERT_EQ(batch.data()[i], before.data()[i]);
  }
}

}  // namespace
}  // namespace eos
