#include "data/synthetic_images.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/imbalance.h"

namespace eos {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.image_size = 12;
  return config;
}

class AllKindsTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(AllKindsTest, GeneratesCorrectShapesAndRange) {
  SyntheticImageGenerator generator(GetParam(), SmallConfig());
  Rng rng(1);
  Dataset d = generator.GenerateBalanced(3, rng);
  EXPECT_EQ(d.size(), 3 * generator.num_classes());
  EXPECT_EQ(d.images.size(1), 3);
  EXPECT_EQ(d.images.size(2), 12);
  EXPECT_EQ(d.num_classes, generator.num_classes());
  for (int64_t i = 0; i < d.images.numel(); ++i) {
    ASSERT_GE(d.images.data()[i], 0.0f);
    ASSERT_LE(d.images.data()[i], 1.0f);
  }
  auto counts = d.ClassCounts();
  for (int64_t c : counts) EXPECT_EQ(c, 3);
}

TEST_P(AllKindsTest, DeterministicGivenSeeds) {
  SyntheticImageGenerator g1(GetParam(), SmallConfig());
  SyntheticImageGenerator g2(GetParam(), SmallConfig());
  Rng r1(5);
  Rng r2(5);
  Dataset a = g1.GenerateBalanced(2, r1);
  Dataset b = g2.GenerateBalanced(2, r2);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.labels, b.labels);
  for (int64_t i = 0; i < a.images.numel(); ++i) {
    ASSERT_EQ(a.images.data()[i], b.images.data()[i]);
  }
}

TEST_P(AllKindsTest, InstancesVaryWithinClass) {
  SyntheticImageGenerator generator(GetParam(), SmallConfig());
  Rng rng(2);
  Dataset d = generator.GenerateBalanced(2, rng);
  auto rows = d.ClassIndices(0);
  ASSERT_EQ(rows.size(), 2u);
  int64_t stride = d.images.numel() / d.size();
  const float* a = d.images.data() + rows[0] * stride;
  const float* b = d.images.data() + rows[1] * stride;
  double diff = 0.0;
  for (int64_t i = 0; i < stride; ++i) {
    diff += std::fabs(static_cast<double>(a[i]) - b[i]);
  }
  EXPECT_GT(diff / static_cast<double>(stride), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsTest,
                         ::testing::Values(DatasetKind::kCifar10Like,
                                           DatasetKind::kSvhnLike,
                                           DatasetKind::kCifar100Like,
                                           DatasetKind::kCelebALike));

TEST(SyntheticTest, KindMetadata) {
  EXPECT_EQ(DatasetKindClasses(DatasetKind::kCifar10Like), 10);
  EXPECT_EQ(DatasetKindClasses(DatasetKind::kSvhnLike), 10);
  EXPECT_EQ(DatasetKindClasses(DatasetKind::kCifar100Like), 100);
  EXPECT_EQ(DatasetKindClasses(DatasetKind::kCelebALike), 5);
  EXPECT_STREQ(DatasetKindName(DatasetKind::kCifar10Like), "CIFAR10-like");
}

TEST(SyntheticTest, ImbalancedGenerationMatchesRequestedCounts) {
  SyntheticImageGenerator generator(DatasetKind::kCifar10Like, SmallConfig());
  auto requested =
      ImbalancedCounts(10, 20, 10.0, ImbalanceType::kExponential);
  Rng rng(3);
  Dataset d = generator.Generate(requested, rng);
  EXPECT_EQ(d.ClassCounts(), requested);
}

// Classes must be learnable: a nearest-class-mean classifier in raw pixel
// space, fit on one sample and evaluated on a disjoint one, should beat
// chance by a wide margin (i.i.d. train/test draws).
TEST(SyntheticTest, ClassesAreSeparableByCentroids) {
  SyntheticConfig config = SmallConfig();
  config.noise_stddev = 0.08f;
  SyntheticImageGenerator generator(DatasetKind::kCifar10Like, config);
  Rng train_rng(10);
  Rng test_rng(20);
  Dataset train = generator.GenerateBalanced(30, train_rng);
  Dataset test = generator.GenerateBalanced(10, test_rng);
  int64_t dim = train.images.numel() / train.size();

  // Per-class pixel centroids.
  std::vector<std::vector<double>> centroid(
      10, std::vector<double>(static_cast<size_t>(dim), 0.0));
  for (int64_t i = 0; i < train.size(); ++i) {
    int64_t c = train.labels[static_cast<size_t>(i)];
    const float* img = train.images.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      centroid[static_cast<size_t>(c)][static_cast<size_t>(j)] += img[j];
    }
  }
  for (auto& c : centroid) {
    for (double& v : c) v /= 30.0;
  }

  int64_t correct = 0;
  for (int64_t i = 0; i < test.size(); ++i) {
    const float* img = test.images.data() + i * dim;
    int64_t best = -1;
    double best_dist = 1e300;
    for (int64_t c = 0; c < 10; ++c) {
      double dist = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        double diff = img[j] - centroid[static_cast<size_t>(c)]
                                       [static_cast<size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    if (best == test.labels[static_cast<size_t>(i)]) ++correct;
  }
  double accuracy = static_cast<double>(correct) / test.size();
  EXPECT_GT(accuracy, 0.4);  // chance is 0.1
}

// The designed confusability: a class's nearest other-centroid should often
// be its shape-family sibling (the auto/truck analogue pairs 2k / 2k+1).
TEST(SyntheticTest, SiblingClassesAreClosest) {
  SyntheticConfig config = SmallConfig();
  config.noise_stddev = 0.02f;
  SyntheticImageGenerator generator(DatasetKind::kCifar10Like, config);
  Rng rng(30);
  Dataset d = generator.GenerateBalanced(40, rng);
  int64_t dim = d.images.numel() / d.size();
  std::vector<std::vector<double>> centroid(
      10, std::vector<double>(static_cast<size_t>(dim), 0.0));
  for (int64_t i = 0; i < d.size(); ++i) {
    int64_t c = d.labels[static_cast<size_t>(i)];
    const float* img = d.images.data() + i * dim;
    for (int64_t j = 0; j < dim; ++j) {
      centroid[static_cast<size_t>(c)][static_cast<size_t>(j)] += img[j];
    }
  }
  for (auto& c : centroid) {
    for (double& v : c) v /= 40.0;
  }
  int sibling_closest = 0;
  for (int64_t c = 0; c < 10; ++c) {
    int64_t best = -1;
    double best_dist = 1e300;
    for (int64_t o = 0; o < 10; ++o) {
      if (o == c) continue;
      double dist = 0.0;
      for (int64_t j = 0; j < dim; ++j) {
        double diff = centroid[static_cast<size_t>(c)][static_cast<size_t>(j)] -
                      centroid[static_cast<size_t>(o)][static_cast<size_t>(j)];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = o;
      }
    }
    int64_t sibling = (c % 2 == 0) ? c + 1 : c - 1;
    if (best == sibling) ++sibling_closest;
  }
  EXPECT_GE(sibling_closest, 5);  // majority of classes pair up
}

}  // namespace
}  // namespace eos
