#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/knn.h"
#include "ml/knn_index.h"
#include "runtime/thread_pool.h"
#include "testing/generators.h"
#include "testing/property.h"

/// \file
/// The indexed-KNN contract (DESIGN.md "Indexed KNN"): exact mode is
/// bitwise-equal to brute force on every geometry the generators produce
/// (duplicates, singletons, collapsed clusters included), the parallel
/// build is thread-count-invariant, the approximate mode honors its
/// leaf-visit budget, and the EOS_KNN selection policy resolves as
/// documented.

namespace eos {
namespace {

using ::eos::testing::DatasetGenOptions;
using ::eos::testing::PropertyCase;
using ::eos::testing::PropertyRunner;
using ::eos::testing::RandomImbalancedSet;

// Geometries for equivalence sweeps: larger than the sampler property sets
// so trees get real depth, still fast.
DatasetGenOptions TreeSetOptions() {
  DatasetGenOptions options;
  options.max_classes = 4;
  options.max_dim = 6;
  options.max_class_count = 60;
  return options;
}

TEST(KdTreeIndexTest, ExactModeMatchesBruteForceOnRandomGeometries) {
  PropertyRunner runner;
  Status st = runner.Run(
      "kdtree-exact-equals-brute",
      [](Rng& rng, const PropertyCase&) -> Status {
        FeatureSet data = RandomImbalancedSet(rng, TreeSetOptions());
        KnnIndex brute(data.features);
        // Small leaves force deep trees even on the tiny generated sets.
        KdTreeOptions options;
        options.leaf_size = 1 + rng.UniformInt(8);
        KdTreeIndex tree(data.features, options);
        int64_t n = data.size();
        int64_t k = 1 + rng.UniformInt(8);
        for (int64_t row = 0; row < n; ++row) {
          EOS_PROP_CHECK_MSG(
              tree.QueryRow(row, k) == brute.QueryRow(row, k),
              "leave-one-out neighbors diverge at row " +
                  std::to_string(row) + " (k=" + std::to_string(k) +
                  ", leaf=" + std::to_string(options.leaf_size) + ")");
        }
        // Off-sample queries (no exclude), including far outside the data.
        for (int64_t t = 0; t < 8; ++t) {
          std::vector<float> q(static_cast<size_t>(data.features.size(1)));
          for (float& v : q) v = rng.Uniform() * 40.0f - 20.0f;
          EOS_PROP_CHECK_MSG(tree.Query(q.data(), k) == brute.Query(q.data(), k),
                             "off-sample query diverges");
        }
        return Status::OK();
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(KdTreeIndexTest, DegenerateArgumentsMatchBruteContract) {
  Tensor points = Tensor::FromVector({4, 1}, {0, 1, 2, 3});
  KdTreeOptions options;
  options.leaf_size = 1;
  KdTreeIndex tree(points, options);
  float q = 1.5f;
  EXPECT_TRUE(tree.Query(&q, 0).empty());
  EXPECT_TRUE(tree.Query(&q, -3).empty());
  EXPECT_EQ(tree.Query(&q, 100).size(), 4u);
  EXPECT_EQ(tree.Query(&q, 4, /*exclude=*/2), (std::vector<int64_t>{1, 0, 3}));
  EXPECT_EQ(tree.Query(&q, 4, /*exclude=*/-9).size(), 4u);
  EXPECT_TRUE(tree.QueryRow(2, 0).empty());

  Tensor one = Tensor::FromVector({1, 2}, {5.0f, 6.0f});
  KdTreeIndex single(one);
  EXPECT_TRUE(single.QueryRow(0, 3).empty());
  EXPECT_EQ(single.num_nodes(), 1);
  EXPECT_EQ(single.num_leaves(), 1);
}

TEST(KdTreeIndexTest, IdenticalPointsTieBreakByAscendingIndex) {
  // Every point identical: split planes are index-only, boxes are
  // zero-volume, and all distances tie — the (distance, index) order must
  // still come out exactly like brute force.
  Tensor points({37, 3});
  for (int64_t i = 0; i < points.numel(); ++i) points.data()[i] = 2.5f;
  KnnIndex brute(points);
  KdTreeOptions options;
  options.leaf_size = 2;
  KdTreeIndex tree(points, options);
  for (int64_t row : {0, 17, 36}) {
    EXPECT_EQ(tree.QueryRow(row, 5), brute.QueryRow(row, 5));
  }
  float q[3] = {2.5f, 2.5f, 2.5f};
  EXPECT_EQ(tree.Query(q, 4), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(KdTreeIndexTest, BatchedEntryPointsMatchSingleQueries) {
  Rng rng(11);
  Tensor points = Tensor::Uniform({300, 4}, -2.0f, 2.0f, rng);
  KdTreeIndex tree(points);
  Tensor queries = Tensor::Uniform({13, 4}, -2.0f, 2.0f, rng);
  auto batched = tree.QueryBatch(queries.data(), 13, 6);
  ASSERT_EQ(batched.size(), 13u);
  for (int64_t i = 0; i < 13; ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)],
              tree.Query(queries.data() + i * 4, 6));
  }
  std::vector<int64_t> rows = {0, 99, 131, 299};
  auto row_batched = tree.QueryRows(rows, 5);
  ASSERT_EQ(row_batched.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(row_batched[i], tree.QueryRow(rows[i], 5));
  }
}

TEST(KdTreeIndexTest, BuildAndQueriesAreThreadCountInvariant) {
  int restore = runtime::ThreadCount();
  PropertyRunner runner;
  Status st = runner.Run(
      "kdtree-thread-invariance",
      [](Rng& rng, const PropertyCase&) -> Status {
        FeatureSet data = RandomImbalancedSet(rng, TreeSetOptions());
        KdTreeOptions options;
        options.leaf_size = 1 + rng.UniformInt(8);
        runtime::SetThreadCount(1);
        KdTreeIndex serial(data.features, options);
        runtime::SetThreadCount(8);
        KdTreeIndex parallel_tree(data.features, options);
        EOS_PROP_CHECK(serial.num_nodes() == parallel_tree.num_nodes());
        EOS_PROP_CHECK(serial.num_leaves() == parallel_tree.num_leaves());
        int64_t k = 1 + rng.UniformInt(6);
        for (int64_t row = 0; row < data.size(); ++row) {
          EOS_PROP_CHECK_MSG(
              serial.QueryRow(row, k) == parallel_tree.QueryRow(row, k),
              "1-thread and 8-thread trees answer differently at row " +
                  std::to_string(row));
        }
        return Status::OK();
      });
  runtime::SetThreadCount(restore);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(KdTreeIndexTest, ApproximateModeHonorsBudgetAndDegradesGracefully) {
  Rng rng(23);
  Tensor points = Tensor::Uniform({2000, 3}, -4.0f, 4.0f, rng);
  KdTreeIndex exact(points);
  for (int64_t budget : {1, 2, 8, 1 << 20}) {
    KdTreeOptions options;
    options.leaf_visit_budget = budget;
    KdTreeIndex approx(points, options);
    for (int64_t row : {0, 500, 1999}) {
      KnnQueryStats stats;
      auto nbrs = approx.QueryWithStats(points.data() + row * 3, 5, row,
                                        &stats);
      EXPECT_LE(stats.leaves_visited, budget);
      // A budget of >= 1 leaf always yields candidates (leaf_size >= k).
      ASSERT_FALSE(nbrs.empty());
      // Results stay sorted ascending (distance, index) at any budget.
      const float* q = points.data() + row * 3;
      for (size_t i = 1; i < nbrs.size(); ++i) {
        float prev = approx.SquaredDistance(nbrs[i - 1], q);
        float cur = approx.SquaredDistance(nbrs[i], q);
        EXPECT_TRUE(prev < cur || (prev == cur && nbrs[i - 1] < nbrs[i]));
      }
      // A budget covering the whole tree is exact.
      if (budget >= approx.num_leaves()) {
        EXPECT_EQ(nbrs, exact.QueryRow(row, 5));
      }
    }
  }
}

TEST(KdTreeIndexTest, ApproximateQueriesAreDeterministic) {
  Rng rng(29);
  Tensor points = Tensor::Uniform({1000, 4}, -1.0f, 1.0f, rng);
  KdTreeOptions options;
  options.leaf_visit_budget = 4;
  int restore = runtime::ThreadCount();
  runtime::SetThreadCount(1);
  KdTreeIndex a(points, options);
  runtime::SetThreadCount(8);
  KdTreeIndex b(points, options);
  runtime::SetThreadCount(restore);
  for (int64_t row = 0; row < 1000; row += 97) {
    EXPECT_EQ(a.QueryRow(row, 7), b.QueryRow(row, 7));
  }
}

// ---------------------------------------------------------------------
// Selection policy.
// ---------------------------------------------------------------------

TEST(KnnPolicyTest, ParseKnnModeGrammar) {
  KnnMode mode = KnnMode::kAuto;
  int64_t budget = -1;
  EXPECT_TRUE(ParseKnnMode("brute", &mode, &budget));
  EXPECT_EQ(mode, KnnMode::kBrute);
  EXPECT_TRUE(ParseKnnMode("index", &mode, &budget));
  EXPECT_EQ(mode, KnnMode::kIndex);
  EXPECT_TRUE(ParseKnnMode("auto", &mode, &budget));
  EXPECT_EQ(mode, KnnMode::kAuto);
  EXPECT_EQ(budget, -1);  // untouched so far
  EXPECT_TRUE(ParseKnnMode("approx", &mode, &budget));
  EXPECT_EQ(mode, KnnMode::kApprox);
  EXPECT_EQ(budget, -1);  // bare approx leaves the budget alone
  EXPECT_TRUE(ParseKnnMode("approx:32", &mode, &budget));
  EXPECT_EQ(mode, KnnMode::kApprox);
  EXPECT_EQ(budget, 32);

  mode = KnnMode::kBrute;
  budget = 7;
  for (const char* bad :
       {"", "Brute", "kd", "approx:", "approx:0", "approx:-2", "approx:x",
        "index:4", "approx:99999999999999999999"}) {
    EXPECT_FALSE(ParseKnnMode(bad, &mode, &budget)) << bad;
    EXPECT_EQ(mode, KnnMode::kBrute) << bad;  // failures touch nothing
    EXPECT_EQ(budget, 7) << bad;
  }
}

TEST(KnnPolicyTest, AutoSwitchesOnRowCount) {
  // No override, no EOS_KNN (the test binary env does not set it).
  ClearForcedKnnMode();
  ASSERT_EQ(std::getenv("EOS_KNN"), nullptr);
  EXPECT_EQ(ResolveKnnChoice(kKnnAutoIndexThreshold - 1).backend,
            KnnMode::kBrute);
  EXPECT_EQ(ResolveKnnChoice(kKnnAutoIndexThreshold).backend,
            KnnMode::kIndex);
  EXPECT_EQ(ResolveKnnChoice(1).backend, KnnMode::kBrute);
}

TEST(KnnPolicyTest, ScopedForceOverridesAndRestores) {
  ClearForcedKnnMode();
  {
    ScopedForceKnnMode force(KnnMode::kIndex);
    EXPECT_EQ(ResolveKnnChoice(2).backend, KnnMode::kIndex);
    EXPECT_EQ(ResolveKnnChoice(2).leaf_budget, 0);
  }
  {
    ScopedForceKnnMode force(KnnMode::kApprox, 16);
    KnnChoice choice = ResolveKnnChoice(1 << 20);
    EXPECT_EQ(choice.backend, KnnMode::kApprox);
    EXPECT_EQ(choice.leaf_budget, 16);
  }
  {
    // Approx without an explicit budget falls back to the default.
    ScopedForceKnnMode force(KnnMode::kApprox);
    EXPECT_EQ(ResolveKnnChoice(10).leaf_budget, kKnnDefaultLeafBudget);
  }
  EXPECT_EQ(ResolveKnnChoice(1).backend, KnnMode::kBrute);
}

TEST(KnnSearcherTest, BackendsAgreeInExactModes) {
  Rng rng(31);
  Tensor points = Tensor::Uniform({500, 3}, -1.0f, 1.0f, rng);
  std::vector<std::vector<int64_t>> results[2];
  KnnMode modes[2] = {KnnMode::kBrute, KnnMode::kIndex};
  for (int m = 0; m < 2; ++m) {
    ScopedForceKnnMode force(modes[m]);
    KnnSearcher searcher(points);
    EXPECT_EQ(searcher.choice().backend, modes[m]);
    EXPECT_EQ(searcher.size(), 500);
    EXPECT_EQ(searcher.dim(), 3);
    std::vector<int64_t> rows(500);
    for (int64_t i = 0; i < 500; ++i) rows[static_cast<size_t>(i)] = i;
    results[m] = searcher.QueryRows(rows, 6);
  }
  EXPECT_EQ(results[0], results[1]);
}

TEST(KnnSearcherTest, ApproxBackendCarriesItsBudget) {
  Rng rng(37);
  Tensor points = Tensor::Uniform({256, 2}, 0.0f, 1.0f, rng);
  ScopedForceKnnMode force(KnnMode::kApprox, 2);
  KnnSearcher searcher(points);
  EXPECT_EQ(searcher.choice().backend, KnnMode::kApprox);
  EXPECT_EQ(searcher.choice().leaf_budget, 2);
  // Still answers sane, sorted, deterministic results.
  auto nbrs = searcher.QueryRow(0, 4);
  EXPECT_FALSE(nbrs.empty());
  EXPECT_EQ(nbrs, searcher.QueryRow(0, 4));
}

TEST(KnnSearcherTest, AllKNearestNeighborsIdenticalAcrossBackends) {
  Rng rng(41);
  Tensor points = Tensor::Uniform({400, 5}, -3.0f, 3.0f, rng);
  std::vector<std::vector<int64_t>> brute_all;
  {
    ScopedForceKnnMode force(KnnMode::kBrute);
    brute_all = AllKNearestNeighbors(points, 5);
  }
  std::vector<std::vector<int64_t>> tree_all;
  {
    ScopedForceKnnMode force(KnnMode::kIndex);
    tree_all = AllKNearestNeighbors(points, 5);
  }
  EXPECT_EQ(brute_all, tree_all);
}

}  // namespace
}  // namespace eos
