#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ml/knn.h"
#include "ml/linear_svm.h"

namespace eos {
namespace {

TEST(KnnTest, FindsExactNeighborsOnALine) {
  // Points at x = 0, 1, 2, ..., 9 on a line.
  Tensor points({10, 1});
  for (int64_t i = 0; i < 10; ++i) points.at(i, 0) = static_cast<float>(i);
  KnnIndex index(points);
  auto nbrs = index.QueryRow(5, 2);
  ASSERT_EQ(nbrs.size(), 2u);
  // 4 and 6 are equidistant; both must be the two nearest.
  EXPECT_TRUE((nbrs[0] == 4 && nbrs[1] == 6) ||
              (nbrs[0] == 6 && nbrs[1] == 4));
  auto edge = index.QueryRow(0, 3);
  EXPECT_EQ(edge, (std::vector<int64_t>{1, 2, 3}));
}

TEST(KnnTest, EqualDistancesTieBreakByAscendingIndex) {
  // Three points all at distance 1 from the query, plus a farther one. The
  // documented contract (EOS neighbor selection depends on it): equal
  // distances order by ascending index, both in which points are selected
  // and in the output order.
  Tensor points = Tensor::FromVector({4, 1}, {1.0f, -1.0f, 1.0f, 3.0f});
  KnnIndex index(points);
  float q = 0.0f;
  EXPECT_EQ(index.Query(&q, 3), (std::vector<int64_t>{0, 1, 2}));
  // With k=2 the smaller-index members of the tie win selection.
  EXPECT_EQ(index.Query(&q, 2), (std::vector<int64_t>{0, 1}));
  // Exact duplicate points (distance 0 ties) behave the same way.
  Tensor dup = Tensor::FromVector({3, 1}, {5.0f, 5.0f, 5.0f});
  KnnIndex dup_index(dup);
  EXPECT_EQ(dup_index.QueryRow(1, 2), (std::vector<int64_t>{0, 2}));
}

TEST(KnnTest, BatchedQueriesMatchSingleQueries) {
  Rng rng(7);
  Tensor points = Tensor::Uniform({60, 3}, -1.0f, 1.0f, rng);
  KnnIndex index(points);
  Tensor queries = Tensor::Uniform({9, 3}, -1.0f, 1.0f, rng);
  auto batched = index.QueryBatch(queries.data(), 9, 4);
  ASSERT_EQ(batched.size(), 9u);
  for (int64_t i = 0; i < 9; ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)],
              index.Query(queries.data() + i * 3, 4));
  }
  std::vector<int64_t> rows = {0, 7, 13, 59};
  auto row_batched = index.QueryRows(rows, 5);
  ASSERT_EQ(row_batched.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(row_batched[i], index.QueryRow(rows[i], 5));
  }
}

TEST(KnnTest, ExcludesSelf) {
  Tensor points = Tensor::FromVector({3, 2}, {0, 0, 0, 0, 5, 5});
  KnnIndex index(points);
  auto nbrs = index.QueryRow(0, 2);
  for (int64_t nb : nbrs) EXPECT_NE(nb, 0);
}

TEST(KnnTest, KClampedToAvailable) {
  Tensor points = Tensor::FromVector({3, 1}, {0, 1, 2});
  KnnIndex index(points);
  EXPECT_EQ(index.QueryRow(0, 100).size(), 2u);
  float q = 0.5f;
  EXPECT_EQ(index.Query(&q, 100).size(), 3u);
}

TEST(KnnTest, SortedAscendingByDistance) {
  Rng rng(1);
  Tensor points = Tensor::Uniform({50, 4}, -1.0f, 1.0f, rng);
  KnnIndex index(points);
  for (int64_t row = 0; row < 50; row += 7) {
    auto nbrs = index.QueryRow(row, 10);
    const float* q = points.data() + row * 4;
    float prev = -1.0f;
    for (int64_t nb : nbrs) {
      float dist = index.SquaredDistance(nb, q);
      EXPECT_GE(dist, prev);
      prev = dist;
    }
  }
}

TEST(KnnTest, MatchesBruteForce) {
  Rng rng(2);
  Tensor points = Tensor::Uniform({40, 3}, -1.0f, 1.0f, rng);
  KnnIndex index(points);
  for (int64_t row = 0; row < 40; row += 5) {
    auto fast = index.QueryRow(row, 5);
    // Brute force.
    std::vector<std::pair<float, int64_t>> all;
    const float* q = points.data() + row * 3;
    for (int64_t i = 0; i < 40; ++i) {
      if (i == row) continue;
      all.emplace_back(index.SquaredDistance(i, q), i);
    }
    std::sort(all.begin(), all.end());
    for (size_t k = 0; k < 5; ++k) {
      EXPECT_EQ(fast[k], all[k].second);
    }
  }
}

TEST(KnnTest, DegenerateKIsWellDefined) {
  // The documented degenerate-argument contract: k <= 0 (including
  // negative) is an empty result, never a crash or a clamp to 1.
  Tensor points = Tensor::FromVector({3, 1}, {0, 1, 2});
  KnnIndex index(points);
  float q = 0.5f;
  EXPECT_TRUE(index.Query(&q, 0).empty());
  EXPECT_TRUE(index.Query(&q, -1).empty());
  EXPECT_TRUE(index.Query(&q, -100).empty());
  EXPECT_TRUE(index.QueryRow(1, 0).empty());
  EXPECT_TRUE(index.QueryRow(1, -5).empty());
}

TEST(KnnTest, KAtLeastNWithExcludeClampsToAvailable) {
  Tensor points = Tensor::FromVector({4, 1}, {0, 1, 2, 3});
  KnnIndex index(points);
  float q = 1.5f;
  // k == n with a valid exclude: n - 1 results.
  EXPECT_EQ(index.Query(&q, 4, /*exclude=*/2),
            (std::vector<int64_t>{1, 0, 3}));
  // k > n with no exclude: all n results.
  EXPECT_EQ(index.Query(&q, 10).size(), 4u);
  // Out-of-range excludes exclude nothing.
  EXPECT_EQ(index.Query(&q, 10, /*exclude=*/-7).size(), 4u);
  EXPECT_EQ(index.Query(&q, 10, /*exclude=*/99).size(), 4u);
}

TEST(KnnTest, SinglePointLeaveOneOutIsEmpty) {
  Tensor points = Tensor::FromVector({1, 2}, {3.0f, 4.0f});
  KnnIndex index(points);
  // The only candidate is excluded: nothing is available at any k.
  EXPECT_TRUE(index.QueryRow(0, 1).empty());
  EXPECT_TRUE(index.QueryRow(0, 100).empty());
  auto all = AllKNearestNeighbors(points, 5);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].empty());
}

TEST(KnnTest, BatchedDegenerateQueriesMatchSingle) {
  Tensor points = Tensor::FromVector({3, 1}, {0, 1, 2});
  KnnIndex index(points);
  Tensor queries = Tensor::FromVector({2, 1}, {0.4f, 1.6f});
  auto batched = index.QueryBatch(queries.data(), 2, 0);
  ASSERT_EQ(batched.size(), 2u);
  EXPECT_TRUE(batched[0].empty());
  EXPECT_TRUE(batched[1].empty());
  EXPECT_TRUE(index.QueryBatch(queries.data(), 0, 3).empty());
  auto rows = index.QueryRows({0, 1, 2}, -1);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) EXPECT_TRUE(r.empty());
  auto all = AllKNearestNeighbors(points, 0);
  ASSERT_EQ(all.size(), 3u);
  for (const auto& r : all) EXPECT_TRUE(r.empty());
}

TEST(KnnTest, AllKNearestNeighborsShape) {
  Rng rng(3);
  Tensor points = Tensor::Uniform({12, 2}, -1.0f, 1.0f, rng);
  auto all = AllKNearestNeighbors(points, 4);
  ASSERT_EQ(all.size(), 12u);
  for (const auto& nbrs : all) EXPECT_EQ(nbrs.size(), 4u);
}

Tensor GaussianBlobs(const std::vector<std::pair<float, float>>& centers,
                     int64_t per_class, float stddev,
                     std::vector<int64_t>* labels, Rng& rng) {
  int64_t n = per_class * static_cast<int64_t>(centers.size());
  Tensor points({n, 2});
  labels->clear();
  int64_t row = 0;
  for (size_t c = 0; c < centers.size(); ++c) {
    for (int64_t i = 0; i < per_class; ++i) {
      points.at(row, 0) = rng.Normal(centers[c].first, stddev);
      points.at(row, 1) = rng.Normal(centers[c].second, stddev);
      labels->push_back(static_cast<int64_t>(c));
      ++row;
    }
  }
  return points;
}

TEST(LinearSvmTest, SeparatesGaussianBlobs) {
  Rng rng(4);
  std::vector<int64_t> labels;
  Tensor x = GaussianBlobs({{-2, -2}, {2, 2}, {-2, 2}}, 50, 0.4f, &labels,
                           rng);
  LinearSvm svm;
  svm.Fit(x, labels, 3, {}, rng);
  ASSERT_TRUE(svm.fitted());

  std::vector<int64_t> test_labels;
  Tensor test = GaussianBlobs({{-2, -2}, {2, 2}, {-2, 2}}, 20, 0.4f,
                              &test_labels, rng);
  auto preds = svm.Predict(test);
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == test_labels[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.9);
}

TEST(LinearSvmTest, DecisionFunctionShape) {
  Rng rng(5);
  std::vector<int64_t> labels;
  Tensor x = GaussianBlobs({{-1, 0}, {1, 0}}, 30, 0.3f, &labels, rng);
  LinearSvm svm;
  svm.Fit(x, labels, 2, {}, rng);
  Tensor scores = svm.DecisionFunction(x);
  EXPECT_EQ(scores.size(0), x.size(0));
  EXPECT_EQ(scores.size(1), 2);
  // The target class score should exceed the other on most training rows.
  int64_t correct = 0;
  for (int64_t i = 0; i < x.size(0); ++i) {
    int64_t y = labels[static_cast<size_t>(i)];
    if (scores.at(i, y) > scores.at(i, 1 - y)) ++correct;
  }
  EXPECT_GT(correct, x.size(0) * 9 / 10);
}

TEST(LinearSvmTest, PredictsMajorityUnderOverlap) {
  // Fully overlapped classes with skewed counts: the learner should still
  // produce valid labels.
  Rng rng(6);
  Tensor x = Tensor::Uniform({60, 2}, -1.0f, 1.0f, rng);
  std::vector<int64_t> labels(60, 0);
  for (int i = 0; i < 10; ++i) labels[static_cast<size_t>(i)] = 1;
  LinearSvm svm;
  svm.Fit(x, labels, 2, {}, rng);
  auto preds = svm.Predict(x);
  for (int64_t p : preds) EXPECT_TRUE(p == 0 || p == 1);
}

}  // namespace
}  // namespace eos
