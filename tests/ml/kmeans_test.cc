#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "sampling/kmeans_smote.h"
#include "sampling/rbo.h"

namespace eos {
namespace {

Tensor ThreeBlobs(int64_t per_blob, uint64_t seed,
                  std::vector<int64_t>* truth = nullptr) {
  Rng rng(seed);
  Tensor points({3 * per_blob, 2});
  constexpr float kCenters[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < per_blob; ++i) {
      int64_t row = b * per_blob + i;
      points.at(row, 0) = rng.Normal(kCenters[b][0], 0.5f);
      points.at(row, 1) = rng.Normal(kCenters[b][1], 0.5f);
      if (truth != nullptr) truth->push_back(b);
    }
  }
  return points;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  std::vector<int64_t> truth;
  Tensor points = ThreeBlobs(30, 1, &truth);
  Rng rng(2);
  KMeansResult result = KMeans(points, 3, 50, rng);
  ASSERT_EQ(result.assignments.size(), 90u);
  // Every blob must map to a single cluster (purity 1 for separated blobs).
  for (int64_t b = 0; b < 3; ++b) {
    int64_t first = result.assignments[static_cast<size_t>(b * 30)];
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_EQ(result.assignments[static_cast<size_t>(b * 30 + i)], first);
    }
  }
  // Clusters are distinct.
  EXPECT_NE(result.assignments[0], result.assignments[30]);
  EXPECT_NE(result.assignments[30], result.assignments[60]);
}

TEST(KMeansTest, CentroidsNearBlobCenters) {
  Tensor points = ThreeBlobs(40, 3);
  Rng rng(4);
  KMeansResult result = KMeans(points, 3, 50, rng);
  // Each true center must have a centroid within 0.5.
  constexpr float kCenters[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (auto& center : kCenters) {
    double best = 1e300;
    for (int64_t j = 0; j < 3; ++j) {
      double dx = result.centroids.at(j, 0) - center[0];
      double dy = result.centroids.at(j, 1) - center[1];
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LT(best, 0.5);
  }
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng data_rng(5);
  Tensor points = Tensor::Uniform({4, 2}, -1.0f, 1.0f, data_rng);
  Rng rng(6);
  KMeansResult result = KMeans(points, 10, 20, rng);
  EXPECT_EQ(result.centroids.size(0), 4);
}

TEST(KMeansTest, SingleClusterIsMean) {
  Tensor points = Tensor::FromVector({4, 1}, {0.0f, 2.0f, 4.0f, 6.0f});
  Rng rng(7);
  KMeansResult result = KMeans(points, 1, 20, rng);
  EXPECT_NEAR(result.centroids.at(0, 0), 3.0f, 1e-5f);
  EXPECT_EQ(result.cluster_sizes[0], 4);
}

TEST(KMeansTest, SizesSumToN) {
  Tensor points = ThreeBlobs(20, 8);
  Rng rng(9);
  KMeansResult result = KMeans(points, 4, 50, rng);
  int64_t total = 0;
  for (int64_t s : result.cluster_sizes) total += s;
  EXPECT_EQ(total, 60);
}

FeatureSet TwoSubConceptMinority(uint64_t seed) {
  // Majority blob at origin; minority split into two sub-concepts far
  // apart — the failure case k-means SMOTE exists for.
  Rng rng(seed);
  FeatureSet out;
  out.num_classes = 2;
  out.features = Tensor({50 + 12, 2});
  for (int64_t i = 0; i < 50; ++i) {
    out.features.at(i, 0) = rng.Normal(0.0f, 0.5f);
    out.features.at(i, 1) = rng.Normal(5.0f, 0.5f);
    out.labels.push_back(0);
  }
  for (int64_t i = 0; i < 12; ++i) {
    float cx = (i % 2 == 0) ? -6.0f : 6.0f;  // two sub-concepts
    out.features.at(50 + i, 0) = rng.Normal(cx, 0.3f);
    out.features.at(50 + i, 1) = rng.Normal(0.0f, 0.3f);
    out.labels.push_back(1);
  }
  return out;
}

TEST(KMeansSmoteTest, BalancesAndAvoidsBridging) {
  FeatureSet data = TwoSubConceptMinority(10);
  KMeansSmote sampler(3, /*clusters=*/2);
  Rng rng(11);
  FeatureSet out = sampler.Resample(data, rng);
  auto counts = out.ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  // No synthetic minority point should land in the bridge region between
  // the sub-concepts (|x| < 3): cluster-local interpolation prevents it.
  for (int64_t i = data.size(); i < out.size(); ++i) {
    ASSERT_GT(std::fabs(out.features.at(i, 0)), 3.0f)
        << "bridging sample at x=" << out.features.at(i, 0);
  }
}

TEST(KMeansSmoteTest, PlainSmoteWouldBridge) {
  // Sanity check of the test construction itself: plain SMOTE on the same
  // data does produce bridge points, so the k-means variant's behaviour is
  // a real difference.
  FeatureSet data = TwoSubConceptMinority(12);
  SamplerConfig config;
  config.kind = SamplerKind::kSmote;
  config.k_neighbors = 11;  // neighborhood spans both sub-concepts
  auto smote = MakeOversampler(config);
  Rng rng(13);
  FeatureSet out = smote->Resample(data, rng);
  int64_t bridging = 0;
  for (int64_t i = data.size(); i < out.size(); ++i) {
    if (std::fabs(out.features.at(i, 0)) < 3.0f) ++bridging;
  }
  EXPECT_GT(bridging, 0);
}

TEST(RboTest, BalancesAndStaysFinite) {
  FeatureSet data = TwoSubConceptMinority(14);
  RadialBasedOversampler sampler;
  Rng rng(15);
  FeatureSet out = sampler.Resample(data, rng);
  auto counts = out.ClassCounts();
  EXPECT_EQ(counts[0], counts[1]);
  for (int64_t i = 0; i < out.features.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(out.features.data()[i]));
  }
}

TEST(RboTest, SamplesAvoidMajorityRegion) {
  FeatureSet data = TwoSubConceptMinority(16);
  RadialBasedOversampler sampler(0.25, 20, 0.2);
  Rng rng(17);
  FeatureSet out = sampler.Resample(data, rng);
  // The potential walk moves away from the majority blob at (0, 5): no
  // synthetic minority point should end up within 2 units of it.
  for (int64_t i = data.size(); i < out.size(); ++i) {
    float dx = out.features.at(i, 0);
    float dy = out.features.at(i, 1) - 5.0f;
    ASSERT_GT(dx * dx + dy * dy, 4.0f);
  }
}

TEST(FactoryTest, NewKindsConstructible) {
  for (SamplerKind kind : {SamplerKind::kKMeansSmote, SamplerKind::kRbo}) {
    SamplerConfig config;
    config.kind = kind;
    auto sampler = MakeOversampler(config);
    ASSERT_NE(sampler, nullptr);
    EXPECT_EQ(sampler->name(), SamplerKindName(kind));
  }
}

}  // namespace
}  // namespace eos
