#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/matmul.h"
#include "losses/asl.h"
#include "losses/cross_entropy.h"
#include "losses/focal.h"
#include "losses/ldam.h"
#include "losses/loss.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

// Finite-difference check of d loss / d logits for any Loss.
void GradCheckLoss(Loss& loss, const Tensor& logits,
                   const std::vector<int64_t>& targets, double tol = 2e-3) {
  Tensor grad;
  Tensor work = logits.Clone();
  loss.Compute(work, targets, &grad);
  constexpr float kEps = 1e-3f;
  for (int64_t i = 0; i < work.numel(); ++i) {
    float original = work.data()[i];
    work.data()[i] = original + kEps;
    double up = loss.Compute(work, targets, nullptr);
    work.data()[i] = original - kEps;
    double down = loss.Compute(work, targets, nullptr);
    work.data()[i] = original;
    double numeric = (up - down) / (2.0 * kEps);
    ASSERT_NEAR(grad.data()[i], numeric, tol) << "logit " << i;
  }
}

Tensor TestLogits() {
  return Tensor::FromVector(
      {3, 4}, {2.0f, -1.0f, 0.5f, 0.0f, -0.5f, 1.5f, 0.2f, -2.0f, 0.0f, 0.1f,
               -0.3f, 1.0f});
}

TEST(CrossEntropyTest, MatchesManualComputation) {
  CrossEntropyLoss ce;
  Tensor logits = Tensor::FromVector({1, 2}, {1.0f, 0.0f});
  float loss = ce.Compute(logits, {0}, nullptr);
  // -log(e^1 / (e^1 + e^0)).
  float expected = -std::log(std::exp(1.0f) / (std::exp(1.0f) + 1.0f));
  EXPECT_NEAR(loss, expected, 1e-5f);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHot) {
  CrossEntropyLoss ce;
  Tensor logits = TestLogits();
  Tensor grad;
  ce.Compute(logits, {0, 1, 3}, &grad);
  Tensor probs = SoftmaxRows(logits);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      float expected = probs.at(i, j);
      if ((i == 0 && j == 0) || (i == 1 && j == 1) || (i == 2 && j == 3)) {
        expected -= 1.0f;
      }
      EXPECT_NEAR(grad.at(i, j), expected / 3.0f, 1e-5f);
    }
  }
}

TEST(CrossEntropyTest, GradCheck) {
  CrossEntropyLoss ce;
  GradCheckLoss(ce, TestLogits(), {0, 1, 3});
}

TEST(CrossEntropyTest, WeightedReduction) {
  CrossEntropyLoss weighted({2.0f, 1.0f});
  CrossEntropyLoss plain;
  Tensor logits = Tensor::FromVector({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  // Weighted mean with both classes present: (2*l0 + 1*l1) / 3.
  Tensor lp = LogSoftmaxRows(logits);
  float l0 = -lp.at(0, 0);
  float l1 = -lp.at(1, 1);
  EXPECT_NEAR(weighted.Compute(logits, {0, 1}, nullptr),
              (2.0f * l0 + l1) / 3.0f, 1e-5f);
  EXPECT_NEAR(plain.Compute(logits, {0, 1}, nullptr), (l0 + l1) / 2.0f,
              1e-5f);
}

TEST(CrossEntropyTest, WeightedGradCheck) {
  CrossEntropyLoss ce({2.0f, 0.5f, 1.0f, 3.0f});
  GradCheckLoss(ce, TestLogits(), {3, 0, 2});
}

TEST(FocalTest, GammaZeroEqualsCrossEntropy) {
  FocalLoss focal(0.0);
  CrossEntropyLoss ce;
  Tensor logits = TestLogits();
  std::vector<int64_t> targets = {1, 2, 0};
  EXPECT_NEAR(focal.Compute(logits, targets, nullptr),
              ce.Compute(logits, targets, nullptr), 1e-5f);
}

TEST(FocalTest, DownWeightsEasyExamples) {
  FocalLoss focal(2.0);
  CrossEntropyLoss ce;
  // Very confident correct prediction -> focal loss much smaller than CE.
  Tensor easy = Tensor::FromVector({1, 2}, {8.0f, -8.0f});
  float f = focal.Compute(easy, {0}, nullptr);
  float c = ce.Compute(easy, {0}, nullptr);
  EXPECT_LT(f, 0.01f * c + 1e-9f);
}

TEST(FocalTest, GradCheck) {
  FocalLoss focal(2.0);
  GradCheckLoss(focal, TestLogits(), {2, 0, 1});
}

TEST(FocalTest, GradCheckGammaHalf) {
  FocalLoss focal(0.5);
  GradCheckLoss(focal, TestLogits(), {1, 3, 2});
}

TEST(LdamTest, MarginsScaleInverseQuarterPower) {
  LdamLoss ldam({10000, 625, 16}, /*max_margin=*/0.5, /*scale=*/30.0,
                /*drw_start_epoch=*/-1, /*cb_beta=*/0.9999);
  const auto& m = ldam.margins();
  // Smallest class gets the max margin.
  EXPECT_NEAR(m[2], 0.5f, 1e-5f);
  // n^(1/4) ratios: 16^-0.25 / 625^-0.25 = 5/2 = 2.5 -> m2 / m1 = 2.5.
  EXPECT_NEAR(m[2] / m[1], 2.5f, 1e-4f);
  // 625^-0.25 / 10000^-0.25 = 0.2 / 0.1 = 2.
  EXPECT_NEAR(m[1] / m[0], 2.0f, 1e-4f);
  EXPECT_GT(m[2], m[1]);
  EXPECT_GT(m[1], m[0]);
}

TEST(LdamTest, MarginLowersTargetLogitLoss) {
  LdamLoss ldam({100, 10}, 0.5, 30.0, -1, 0.9999);
  CrossEntropyLoss ce;
  Tensor logits = Tensor::FromVector({1, 2}, {5.0f, 3.0f});
  // Margin on the target makes the example look harder -> larger loss.
  EXPECT_GT(ldam.Compute(logits, {1}, nullptr),
            ce.Compute(logits, {1}, nullptr));
}

TEST(LdamTest, DrwActivatesAtEpoch) {
  LdamLoss ldam({100, 10}, 0.5, 30.0, /*drw_start_epoch=*/5, 0.9999);
  EXPECT_FALSE(ldam.drw_active());
  ldam.OnEpochStart(4);
  EXPECT_FALSE(ldam.drw_active());
  ldam.OnEpochStart(5);
  EXPECT_TRUE(ldam.drw_active());
}

TEST(LdamTest, DrwWeightsChangeLoss) {
  Tensor logits = Tensor::FromVector({2, 2}, {1.0f, 0.0f, 0.0f, 1.0f});
  LdamLoss before({100, 10}, 0.5, 30.0, 5, 0.9999);
  float loss_before = before.Compute(logits, {0, 1}, nullptr);
  LdamLoss after({100, 10}, 0.5, 30.0, 5, 0.9999);
  after.OnEpochStart(5);
  float loss_after = after.Compute(logits, {0, 1}, nullptr);
  EXPECT_NE(loss_before, loss_after);
}

TEST(LdamTest, GradCheck) {
  LdamLoss ldam({1000, 100, 50, 10}, 0.5, 10.0, -1, 0.9999);
  GradCheckLoss(ldam, TestLogits(), {3, 1, 0});
}

TEST(LdamTest, GradCheckWithDrw) {
  LdamLoss ldam({1000, 100, 50, 10}, 0.5, 10.0, 0, 0.9999);
  ldam.OnEpochStart(0);
  GradCheckLoss(ldam, TestLogits(), {3, 1, 0});
}

TEST(AslTest, ReducesToBceAtZeroGammasNoClip) {
  AslLoss asl(0.0, 0.0, 0.0);
  Tensor logits = Tensor::FromVector({1, 2}, {0.5f, -0.5f});
  // Manual one-vs-rest BCE: summed over classes, averaged over rows.
  auto sigmoid = [](float z) { return 1.0f / (1.0f + std::exp(-z)); };
  float expected =
      -(std::log(sigmoid(0.5f)) + std::log(1.0f - sigmoid(-0.5f)));
  EXPECT_NEAR(asl.Compute(logits, {0}, nullptr), expected, 1e-5f);
}

TEST(AslTest, ClipDiscardsEasyNegatives) {
  AslLoss asl(0.0, 4.0, 0.05);
  // Very negative logit on a negative class: p < clip -> no contribution.
  Tensor logits = Tensor::FromVector({1, 2}, {10.0f, -10.0f});
  Tensor grad;
  float loss = asl.Compute(logits, {0}, &grad);
  EXPECT_NEAR(grad.at(0, 1), 0.0f, 1e-7f);
  EXPECT_LT(loss, 0.01f);
}

TEST(AslTest, GradCheck) {
  AslLoss asl(1.0, 4.0, 0.05);
  GradCheckLoss(asl, TestLogits(), {0, 2, 3}, 5e-3);
}

TEST(AslTest, GradCheckNoClip) {
  AslLoss asl(0.5, 2.0, 0.0);
  GradCheckLoss(asl, TestLogits(), {1, 1, 2}, 5e-3);
}

TEST(EffectiveNumberTest, MinorityGetsLargerWeight) {
  auto w = EffectiveNumberWeights({1000, 100, 10}, 0.999);
  EXPECT_LT(w[0], w[1]);
  EXPECT_LT(w[1], w[2]);
  // Normalized to mean 1.
  EXPECT_NEAR((w[0] + w[1] + w[2]) / 3.0f, 1.0f, 1e-5f);
}

TEST(EffectiveNumberTest, BetaZeroIsInverseFrequency) {
  auto w = EffectiveNumberWeights({100, 50}, 0.0);
  // beta=0 -> effective number = 1 for every class -> equal weights.
  EXPECT_NEAR(w[0], w[1], 1e-6f);
}

// Property: every loss, fed through a linear model and plain gradient
// descent on a separable problem, must decrease over training.
class LossDescentTest : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossDescentTest, GradientDescentReducesLoss) {
  Rng rng(99);
  constexpr int64_t kN = 60;
  constexpr int64_t kD = 5;
  constexpr int64_t kC = 3;
  Tensor x({kN, kD});
  std::vector<int64_t> y;
  for (int64_t i = 0; i < kN; ++i) {
    int64_t c = i % kC;
    for (int64_t j = 0; j < kD; ++j) {
      x.at(i, j) = rng.Normal(j == c ? 2.0f : 0.0f, 0.7f);
    }
    y.push_back(c);
  }
  std::vector<int64_t> counts = {20, 20, 20};
  LossConfig config;
  config.kind = GetParam();
  config.ldam_scale = 8.0;  // raw linear logits, not cosine: keep s modest
  auto loss = MakeLoss(config, counts);

  Tensor w = Tensor::Zeros({kD, kC});
  auto forward = [&]() { return MatMul(x, w); };
  Tensor logits = forward();
  float initial = loss->Compute(logits, y, nullptr);
  for (int step = 0; step < 200; ++step) {
    logits = forward();
    Tensor grad_logits;
    loss->Compute(logits, y, &grad_logits);
    // dW = X^T dL.
    Tensor grad_w = MatMulTN(x, grad_logits);
    Axpy(-0.5f, grad_w, w);
  }
  logits = forward();
  float final_loss = loss->Compute(logits, y, nullptr);
  EXPECT_LT(final_loss, initial * 0.5f) << LossKindName(GetParam());
  // And the trained model should classify the training set well.
  auto preds = ArgMaxRows(logits);
  int64_t correct = 0;
  for (int64_t i = 0; i < kN; ++i) {
    if (preds[static_cast<size_t>(i)] == y[static_cast<size_t>(i)]) ++correct;
  }
  EXPECT_GT(correct, kN * 8 / 10) << LossKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossDescentTest,
                         ::testing::Values(LossKind::kCrossEntropy,
                                           LossKind::kAsl, LossKind::kFocal,
                                           LossKind::kLdam));

TEST(MakeLossTest, FactoryProducesAllKinds) {
  std::vector<int64_t> counts = {100, 10};
  for (LossKind kind : {LossKind::kCrossEntropy, LossKind::kAsl,
                        LossKind::kFocal, LossKind::kLdam}) {
    LossConfig config;
    config.kind = kind;
    auto loss = MakeLoss(config, counts);
    ASSERT_NE(loss, nullptr);
    EXPECT_EQ(loss->name(), LossKindName(kind));
  }
}

TEST(MakeLossTest, AllLossesFiniteOnRandomLogits) {
  Rng rng(4);
  Tensor logits = Tensor::Uniform({8, 5}, -3.0f, 3.0f, rng);
  std::vector<int64_t> targets;
  for (int i = 0; i < 8; ++i) targets.push_back(rng.UniformInt(5));
  std::vector<int64_t> counts = {500, 200, 80, 30, 10};
  for (LossKind kind : {LossKind::kCrossEntropy, LossKind::kAsl,
                        LossKind::kFocal, LossKind::kLdam}) {
    LossConfig config;
    config.kind = kind;
    auto loss = MakeLoss(config, counts);
    Tensor grad;
    float value = loss->Compute(logits, targets, &grad);
    EXPECT_TRUE(std::isfinite(value)) << LossKindName(kind);
    for (int64_t i = 0; i < grad.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(grad.data()[i])) << LossKindName(kind);
    }
  }
}

}  // namespace
}  // namespace eos
