#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "nn/resnet.h"
#include "tensor/tensor_ops.h"

namespace eos::nn {
namespace {

ImageClassifier SmallNet(uint64_t seed) {
  Rng rng(seed);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = 4;
  return BuildResNet(config, rng);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesOutputs) {
  ImageClassifier original = SmallNet(1);
  // Run one training-mode forward so BN running stats become non-trivial.
  Rng rng(2);
  Tensor x = Tensor::Uniform({4, 3, 8, 8}, -1.0f, 1.0f, rng);
  original.Forward(x, /*training=*/true);
  Tensor expected = original.Forward(x, /*training=*/false);

  std::string path = TempPath("roundtrip.eosw");
  ASSERT_TRUE(SaveClassifier(original, path).ok());

  ImageClassifier restored = SmallNet(999);  // different random init
  ASSERT_TRUE(LoadClassifier(restored, path).ok());
  Tensor actual = restored.Forward(x, /*training=*/false);
  ASSERT_TRUE(SameShape(expected, actual));
  for (int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_FLOAT_EQ(expected.data()[i], actual.data()[i]);
  }
  std::remove((path + ".extractor").c_str());
  std::remove((path + ".head").c_str());
}

TEST(SerializeTest, RunningStatsArePersisted) {
  ImageClassifier original = SmallNet(3);
  Rng rng(4);
  // Several training passes move the running stats away from (0, 1).
  for (int i = 0; i < 5; ++i) {
    Tensor x = Tensor::Uniform({8, 3, 8, 8}, 2.0f, 3.0f, rng);
    original.Forward(x, /*training=*/true);
  }
  std::string path = TempPath("stats.eosw");
  ASSERT_TRUE(SaveParameters(*original.extractor, path).ok());

  ImageClassifier restored = SmallNet(5);
  ASSERT_TRUE(LoadParameters(*restored.extractor, path).ok());
  std::vector<Tensor*> original_buffers;
  std::vector<Tensor*> restored_buffers;
  original.extractor->CollectBuffers(original_buffers);
  restored.extractor->CollectBuffers(restored_buffers);
  ASSERT_EQ(original_buffers.size(), restored_buffers.size());
  ASSERT_FALSE(original_buffers.empty());
  for (size_t i = 0; i < original_buffers.size(); ++i) {
    for (int64_t j = 0; j < original_buffers[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(original_buffers[i]->data()[j],
                      restored_buffers[i]->data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  ImageClassifier small = SmallNet(6);
  std::string path = TempPath("mismatch.eosw");
  ASSERT_TRUE(SaveParameters(*small.head, path).ok());

  Rng rng(7);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = 7;  // different head width
  ImageClassifier other = BuildResNet(config, rng);
  Status status = LoadParameters(*other.head, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileRejected) {
  std::string path = TempPath("garbage.eosw");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a weights file", f);
  std::fclose(f);
  ImageClassifier net = SmallNet(8);
  Status status = LoadParameters(*net.head, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, ClassifierRoundTripPreservesBatchNormBuffers) {
  ImageClassifier original = SmallNet(20);
  Rng rng(21);
  // Training-mode passes move the BN running statistics off (0, 1); the
  // full-classifier round trip must restore them bitwise.
  for (int i = 0; i < 3; ++i) {
    Tensor x = Tensor::Uniform({8, 3, 8, 8}, 1.0f, 2.0f, rng);
    original.Forward(x, /*training=*/true);
  }
  std::string path = TempPath("classifier_buffers.eosw");
  ASSERT_TRUE(SaveClassifier(original, path).ok());

  ImageClassifier restored = SmallNet(22);
  ASSERT_TRUE(LoadClassifier(restored, path).ok());
  std::vector<Tensor*> want;
  std::vector<Tensor*> got;
  original.extractor->CollectBuffers(want);
  restored.extractor->CollectBuffers(got);
  ASSERT_EQ(want.size(), got.size());
  ASSERT_FALSE(want.empty());
  for (size_t i = 0; i < want.size(); ++i) {
    for (int64_t j = 0; j < want[i]->numel(); ++j) {
      ASSERT_EQ(want[i]->data()[j], got[i]->data()[j]);
    }
  }
  std::remove((path + ".extractor").c_str());
  std::remove((path + ".head").c_str());
}

// Returns the size in bytes of the file at `path`.
long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}

// Copies the first `bytes` bytes of `src` to `dst`.
void CopyPrefix(const std::string& src, const std::string& dst, long bytes) {
  std::FILE* in = std::fopen(src.c_str(), "rb");
  std::FILE* out = std::fopen(dst.c_str(), "wb");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::vector<char> buffer(static_cast<size_t>(bytes));
  ASSERT_EQ(std::fread(buffer.data(), 1, buffer.size(), in), buffer.size());
  ASSERT_EQ(std::fwrite(buffer.data(), 1, buffer.size(), out), buffer.size());
  std::fclose(in);
  std::fclose(out);
}

TEST(SerializeTest, TruncatedFileRejected) {
  ImageClassifier net = SmallNet(23);
  std::string path = TempPath("whole.eosw");
  ASSERT_TRUE(SaveParameters(*net.extractor, path).ok());
  long size = FileSize(path);
  ASSERT_GT(size, 64);

  // Cut in the middle of the tensor payload and near the very end (inside
  // the last BN buffer): both must fail as truncated, not load partially.
  for (long keep : {size / 2, size - 3}) {
    std::string cut = TempPath("truncated.eosw");
    CopyPrefix(path, cut, keep);
    ImageClassifier fresh = SmallNet(24);
    Status status = LoadParameters(*fresh.extractor, cut);
    EXPECT_FALSE(status.ok()) << "kept " << keep << " of " << size;
    EXPECT_EQ(status.code(), StatusCode::kIoError);
    std::remove(cut.c_str());
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, TrailingGarbageRejected) {
  ImageClassifier net = SmallNet(25);
  std::string path = TempPath("trailing.eosw");
  ASSERT_TRUE(SaveParameters(*net.extractor, path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputc(0x7f, f);  // a single stray byte must already be fatal
    std::fclose(f);
  }
  ImageClassifier fresh = SmallNet(26);
  Status status = LoadParameters(*fresh.extractor, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, ConcatenatedFilesRejected) {
  // Two valid streams back to back (e.g. a botched `cat a b > c`) must not
  // load as the first stream.
  ImageClassifier net = SmallNet(27);
  std::string path = TempPath("one.eosw");
  ASSERT_TRUE(SaveParameters(*net.head, path).ok());
  long size = FileSize(path);
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<char> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  ImageClassifier fresh = SmallNet(28);
  Status status = LoadParameters(*fresh.head, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicAndVersionErrorsAreDescriptive) {
  std::string path = TempPath("badmagic.eosw");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("XXXX garbage beyond the magic", f);
    std::fclose(f);
  }
  ImageClassifier net = SmallNet(29);
  Status status = LoadParameters(*net.head, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("magic"), std::string::npos)
      << status.ToString();
  {
    // Valid magic, future version: the message names both versions.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("EOSW", 1, 4, f);
    uint32_t version = 42;
    std::fwrite(&version, sizeof(version), 1, f);
    std::fclose(f);
  }
  status = LoadParameters(*net.head, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version 42"), std::string::npos)
      << status.ToString();
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  ImageClassifier net = SmallNet(9);
  Status status = LoadParameters(*net.head, "/nonexistent/file.eosw");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, BuffersCollectedInDeterministicOrder) {
  ImageClassifier a = SmallNet(10);
  ImageClassifier b = SmallNet(10);
  std::vector<Tensor*> buffers_a;
  std::vector<Tensor*> buffers_b;
  a.extractor->CollectBuffers(buffers_a);
  b.extractor->CollectBuffers(buffers_b);
  ASSERT_EQ(buffers_a.size(), buffers_b.size());
  for (size_t i = 0; i < buffers_a.size(); ++i) {
    EXPECT_EQ(buffers_a[i]->shape(), buffers_b[i]->shape());
  }
}

}  // namespace
}  // namespace eos::nn
