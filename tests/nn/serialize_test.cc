#include "nn/serialize.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "nn/resnet.h"
#include "tensor/tensor_ops.h"

namespace eos::nn {
namespace {

ImageClassifier SmallNet(uint64_t seed) {
  Rng rng(seed);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = 4;
  return BuildResNet(config, rng);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesOutputs) {
  ImageClassifier original = SmallNet(1);
  // Run one training-mode forward so BN running stats become non-trivial.
  Rng rng(2);
  Tensor x = Tensor::Uniform({4, 3, 8, 8}, -1.0f, 1.0f, rng);
  original.Forward(x, /*training=*/true);
  Tensor expected = original.Forward(x, /*training=*/false);

  std::string path = TempPath("roundtrip.eosw");
  ASSERT_TRUE(SaveClassifier(original, path).ok());

  ImageClassifier restored = SmallNet(999);  // different random init
  ASSERT_TRUE(LoadClassifier(restored, path).ok());
  Tensor actual = restored.Forward(x, /*training=*/false);
  ASSERT_TRUE(SameShape(expected, actual));
  for (int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_FLOAT_EQ(expected.data()[i], actual.data()[i]);
  }
  std::remove((path + ".extractor").c_str());
  std::remove((path + ".head").c_str());
}

TEST(SerializeTest, RunningStatsArePersisted) {
  ImageClassifier original = SmallNet(3);
  Rng rng(4);
  // Several training passes move the running stats away from (0, 1).
  for (int i = 0; i < 5; ++i) {
    Tensor x = Tensor::Uniform({8, 3, 8, 8}, 2.0f, 3.0f, rng);
    original.Forward(x, /*training=*/true);
  }
  std::string path = TempPath("stats.eosw");
  ASSERT_TRUE(SaveParameters(*original.extractor, path).ok());

  ImageClassifier restored = SmallNet(5);
  ASSERT_TRUE(LoadParameters(*restored.extractor, path).ok());
  std::vector<Tensor*> original_buffers;
  std::vector<Tensor*> restored_buffers;
  original.extractor->CollectBuffers(original_buffers);
  restored.extractor->CollectBuffers(restored_buffers);
  ASSERT_EQ(original_buffers.size(), restored_buffers.size());
  ASSERT_FALSE(original_buffers.empty());
  for (size_t i = 0; i < original_buffers.size(); ++i) {
    for (int64_t j = 0; j < original_buffers[i]->numel(); ++j) {
      ASSERT_FLOAT_EQ(original_buffers[i]->data()[j],
                      restored_buffers[i]->data()[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchRejected) {
  ImageClassifier small = SmallNet(6);
  std::string path = TempPath("mismatch.eosw");
  ASSERT_TRUE(SaveParameters(*small.head, path).ok());

  Rng rng(7);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = 7;  // different head width
  ImageClassifier other = BuildResNet(config, rng);
  Status status = LoadParameters(*other.head, path);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, GarbageFileRejected) {
  std::string path = TempPath("garbage.eosw");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a weights file", f);
  std::fclose(f);
  ImageClassifier net = SmallNet(8);
  Status status = LoadParameters(*net.head, path);
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  ImageClassifier net = SmallNet(9);
  Status status = LoadParameters(*net.head, "/nonexistent/file.eosw");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(SerializeTest, BuffersCollectedInDeterministicOrder) {
  ImageClassifier a = SmallNet(10);
  ImageClassifier b = SmallNet(10);
  std::vector<Tensor*> buffers_a;
  std::vector<Tensor*> buffers_b;
  a.extractor->CollectBuffers(buffers_a);
  b.extractor->CollectBuffers(buffers_b);
  ASSERT_EQ(buffers_a.size(), buffers_b.size());
  for (size_t i = 0; i < buffers_a.size(); ++i) {
    EXPECT_EQ(buffers_a[i]->shape(), buffers_b[i]->shape());
  }
}

}  // namespace
}  // namespace eos::nn
