#include <functional>

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/batchnorm.h"
#include "nn/blocks.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace eos::nn {
namespace {

// Scalar probe loss L = sum(output .* R) for a fixed random R: its gradient
// w.r.t. the output is exactly R, so Backward(R) must produce dL/dinput and
// dL/dparams. Central finite differences verify both.
class GradCheck {
 public:
  GradCheck(Module* module, std::vector<int64_t> input_shape, uint64_t seed)
      : module_(module), rng_(seed) {
    // Inputs keep |x| >= 0.1 so finite differences never straddle the ReLU
    // kink at the input itself (kinks after internal layers are handled by
    // the small epsilon below).
    input_ = Tensor(input_shape);
    for (int64_t i = 0; i < input_.numel(); ++i) {
      float magnitude = rng_.Uniform(0.1f, 1.0f);
      input_.data()[i] = rng_.Bernoulli(0.5) ? magnitude : -magnitude;
    }
    Tensor probe_shape_source = module_->Forward(input_, /*training=*/true);
    probe_ = Tensor::Uniform(probe_shape_source.shape(), -1.0f, 1.0f, rng_);
  }

  double Loss() {
    Tensor out = module_->Forward(input_, /*training=*/true);
    return Sum(Mul(out, probe_));
  }

  void Run(double tol = 2e-2) {
    // Analytic gradients.
    module_->ZeroGrad();
    module_->Forward(input_, /*training=*/true);
    Tensor grad_input = module_->Backward(probe_);

    CheckTensor("input", input_, grad_input, tol);
    for (Parameter* p : module_->Parameters()) {
      CheckTensor(p->name, p->value, p->grad, tol);
    }
  }

 private:
  void CheckTensor(const std::string& name, Tensor& values,
                   const Tensor& analytic, double tol) {
    constexpr float kEps = 2e-3f;
    int64_t n = values.numel();
    int64_t samples = std::min<int64_t>(n, 24);
    for (int64_t s = 0; s < samples; ++s) {
      int64_t idx = n <= samples ? s : rng_.UniformInt(n);
      float original = values.data()[idx];
      values.data()[idx] = original + kEps;
      double up = Loss();
      values.data()[idx] = original - kEps;
      double down = Loss();
      values.data()[idx] = original;
      double numeric = (up - down) / (2.0 * kEps);
      double a = analytic.data()[idx];
      double scale = std::max({1.0, std::fabs(a), std::fabs(numeric)});
      ASSERT_NEAR(a, numeric, tol * scale)
          << name << " coordinate " << idx;
    }
  }

  Module* module_;
  Rng rng_;
  Tensor input_;
  Tensor probe_;
};

TEST(GradCheckTest, Conv2dBasic) {
  Rng rng(1);
  Conv2d conv(2, 3, 3, 1, 1, /*bias=*/true, rng);
  GradCheck(&conv, {2, 2, 5, 5}, 10).Run();
}

TEST(GradCheckTest, Conv2dStridedNoBias) {
  Rng rng(2);
  Conv2d conv(3, 4, 3, 2, 1, /*bias=*/false, rng);
  GradCheck(&conv, {2, 3, 6, 6}, 11).Run();
}

TEST(GradCheckTest, Conv2d1x1) {
  Rng rng(3);
  Conv2d conv(4, 2, 1, 1, 0, /*bias=*/false, rng);
  GradCheck(&conv, {2, 4, 4, 4}, 12).Run();
}

TEST(GradCheckTest, BatchNorm2d) {
  BatchNorm2d bn(3);
  GradCheck(&bn, {4, 3, 3, 3}, 13).Run();
}

TEST(GradCheckTest, BatchNormAfterAffineShift) {
  // Non-default gamma/beta exercise the full backward formula.
  BatchNorm2d bn(2);
  Rng rng(4);
  for (Parameter* p : bn.Parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      p->value.data()[i] = rng.Uniform(0.5f, 1.5f);
    }
  }
  GradCheck(&bn, {3, 2, 4, 4}, 14).Run();
}

TEST(GradCheckTest, Linear) {
  Rng rng(5);
  Linear linear(6, 4, /*bias=*/true, rng);
  GradCheck(&linear, {3, 6}, 15).Run();
}

TEST(GradCheckTest, LinearNoBias) {
  Rng rng(6);
  Linear linear(5, 3, /*bias=*/false, rng);
  GradCheck(&linear, {2, 5}, 16).Run();
}

TEST(GradCheckTest, NormLinear) {
  Rng rng(7);
  NormLinear norm(6, 4, /*scale=*/10.0f, rng);
  GradCheck(&norm, {3, 6}, 17).Run(4e-2);
}

TEST(GradCheckTest, ReLU) {
  ReLU relu;
  GradCheck(&relu, {2, 3, 4, 4}, 18).Run();
}

TEST(GradCheckTest, LeakyReLU) {
  LeakyReLU leaky(0.2f);
  GradCheck(&leaky, {2, 8}, 19).Run();
}

TEST(GradCheckTest, TanhLayer) {
  Tanh tanh_layer;
  GradCheck(&tanh_layer, {2, 6}, 20).Run();
}

TEST(GradCheckTest, SigmoidLayer) {
  Sigmoid sigmoid;
  GradCheck(&sigmoid, {2, 6}, 21).Run();
}

TEST(GradCheckTest, GlobalAvgPool) {
  GlobalAvgPool2d pool;
  GradCheck(&pool, {2, 3, 4, 4}, 22).Run();
}

TEST(GradCheckTest, AvgPool2d) {
  AvgPool2d pool;
  GradCheck(&pool, {2, 2, 4, 4}, 23).Run();
}

TEST(GradCheckTest, BasicBlockIdentityShortcut) {
  Rng rng(8);
  BasicBlock block(4, 4, 1, rng);
  GradCheck(&block, {2, 4, 5, 5}, 24).Run(3e-2);
}

TEST(GradCheckTest, BasicBlockProjectionShortcut) {
  Rng rng(9);
  BasicBlock block(3, 6, 2, rng);
  GradCheck(&block, {2, 3, 6, 6}, 25).Run(3e-2);
}

TEST(GradCheckTest, PreActBlockIdentity) {
  Rng rng(10);
  PreActBlock block(4, 4, 1, rng);
  GradCheck(&block, {2, 4, 5, 5}, 26).Run(3e-2);
}

TEST(GradCheckTest, PreActBlockProjection) {
  Rng rng(11);
  PreActBlock block(3, 5, 2, rng);
  GradCheck(&block, {2, 3, 6, 6}, 27).Run(3e-2);
}

TEST(GradCheckTest, DenseLayer) {
  Rng rng(12);
  DenseLayer layer(3, 2, rng);
  GradCheck(&layer, {2, 3, 4, 4}, 28).Run(3e-2);
}

TEST(GradCheckTest, DropoutBackwardMatchesMask) {
  // Dropout is stochastic across forwards, so central differences do not
  // apply; instead verify the backward uses exactly the last forward's
  // mask: dL/dx = probe .* mask.
  Dropout dropout(0.4f, /*seed=*/123);
  Rng rng(31);
  Tensor x = Tensor::Uniform({4, 10}, -1.0f, 1.0f, rng);
  Tensor y = dropout.Forward(x, /*training=*/true);
  // Recover the realized mask from y / x.
  Tensor probe = Tensor::Uniform(y.shape(), -1.0f, 1.0f, rng);
  Tensor grad = dropout.Backward(probe);
  for (int64_t i = 0; i < x.numel(); ++i) {
    float mask = x.data()[i] != 0.0f ? y.data()[i] / x.data()[i] : 0.0f;
    ASSERT_NEAR(grad.data()[i], probe.data()[i] * mask, 1e-5f);
  }
}

TEST(GradCheckTest, DropoutEvalIsIdentity) {
  Dropout dropout(0.5f, 7);
  Rng rng(32);
  Tensor x = Tensor::Uniform({3, 8}, -1.0f, 1.0f, rng);
  Tensor y = dropout.Forward(x, /*training=*/false);
  for (int64_t i = 0; i < x.numel(); ++i) {
    ASSERT_EQ(y.data()[i], x.data()[i]);
  }
}

TEST(GradCheckTest, DropoutPreservesExpectedValue) {
  Dropout dropout(0.3f, 9);
  Tensor x = Tensor::Full({100, 100}, 1.0f);
  Tensor y = dropout.Forward(x, /*training=*/true);
  // Inverted dropout: E[y] = x. Mean over 10k elements ~ 1 +- 1%.
  EXPECT_NEAR(Mean(y), 1.0, 0.02);
}

TEST(GradCheckTest, SequentialComposition) {
  Rng rng(13);
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<Conv2d>(2, 4, 3, 1, 1, /*bias=*/false, rng));
  seq->Add(std::make_unique<BatchNorm2d>(4));
  seq->Add(std::make_unique<ReLU>());
  seq->Add(std::make_unique<GlobalAvgPool2d>());
  seq->Add(std::make_unique<Linear>(4, 3, /*bias=*/true, rng));
  GradCheck(seq.get(), {3, 2, 5, 5}, 29).Run(3e-2);
}

}  // namespace
}  // namespace eos::nn
