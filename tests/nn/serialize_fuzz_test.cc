#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/mlp.h"
#include "nn/serialize.h"

namespace eos::nn {
namespace {

/// Byte-level fuzzing of the weights loader (tentpole satellite): every
/// mutated or truncated snapshot must come back as a clean Status — never a
/// crash, hang, or unbounded allocation. The suites below push well past
/// 1000 corrupted buffers through LoadParameters.

std::unique_ptr<Sequential> SmallMlp(uint64_t seed) {
  Rng rng(seed);
  return BuildMlp({3, 4, 2}, MlpHidden::kReLU, MlpOutput::kLinear, rng);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<unsigned char> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<unsigned char> bytes(static_cast<size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path,
               const std::vector<unsigned char>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {  // fwrite's buffer is declared nonnull
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

class SerializeFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    module_ = SmallMlp(7);
    path_ = TempPath("fuzz_base.eosw");
    ASSERT_TRUE(SaveParameters(*module_, path_).ok());
    golden_ = ReadFile(path_);
    ASSERT_GT(golden_.size(), 32u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Sequential> module_;
  std::string path_;
  std::vector<unsigned char> golden_;
};

TEST_F(SerializeFuzzTest, ThousandRandomByteMutationsNeverCrashTheLoader) {
  Rng rng(0xF022);
  int64_t rejected = 0;
  int64_t accepted = 0;
  for (int iter = 0; iter < 1200; ++iter) {
    std::vector<unsigned char> mutated = golden_;
    // 1-4 independent byte smashes per iteration: single flipped headers,
    // multi-field corruption, and payload damage all occur.
    int64_t smashes = rng.UniformInt(1, 5);
    for (int64_t s = 0; s < smashes; ++s) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(mutated.size())));
      mutated[pos] = static_cast<unsigned char>(rng.UniformInt(256));
    }
    WriteFile(path_, mutated);
    Status st = LoadParameters(*module_, path_);
    // The only acceptable outcomes: a clean error, or a clean load (the
    // mutation may have hit float payload bytes, which carry no structure,
    // or may have been an identity smash). Crashes/aborts fail the binary.
    if (st.ok()) {
      ++accepted;
    } else {
      ++rejected;
    }
  }
  // Structural fields (magic, counts, names, dims) dominate enough of the
  // stream that many mutations must be caught; payload hits may pass.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(accepted + rejected, 1000);
  // The module must still round-trip after the barrage (no latent state
  // corruption): reload the pristine snapshot.
  WriteFile(path_, golden_);
  EXPECT_TRUE(LoadParameters(*module_, path_).ok());
}

TEST_F(SerializeFuzzTest, EveryTruncationLengthIsARejectedNotACrash) {
  // The loader consumes a byte count fully determined by the module, so
  // EVERY proper prefix must fail (short read), and the check must hold for
  // all of them — including length 0 and a cut inside every field.
  for (size_t keep = 0; keep < golden_.size(); ++keep) {
    std::vector<unsigned char> cut(golden_.begin(),
                                   golden_.begin() + static_cast<long>(keep));
    WriteFile(path_, cut);
    Status st = LoadParameters(*module_, path_);
    ASSERT_FALSE(st.ok()) << "prefix of " << keep << " bytes loaded";
  }
}

TEST_F(SerializeFuzzTest, HugeNameLengthIsRejectedWithoutAllocating) {
  // Offset of the first parameter's name_len: magic(4) + version(4) +
  // param_count(8). A 0xFFFFFFFF length would demand a ~4 GiB string if the
  // loader trusted it; the cap must reject it instead.
  std::vector<unsigned char> mutated = golden_;
  ASSERT_GE(mutated.size(), 20u);
  std::memset(mutated.data() + 16, 0xFF, 4);
  WriteFile(path_, mutated);
  Status st = LoadParameters(*module_, path_);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("exceeds limit"), std::string::npos)
      << st.ToString();
}

TEST_F(SerializeFuzzTest, RandomGarbageFilesOfEverySizeAreRejected) {
  // Pure-noise buffers (no EOSW structure at all) across a size sweep.
  Rng rng(0xF033);
  for (int iter = 0; iter < 300; ++iter) {
    int64_t size = rng.UniformInt(0, 2048);
    std::vector<unsigned char> noise(static_cast<size_t>(size));
    for (auto& b : noise) {
      b = static_cast<unsigned char>(rng.UniformInt(256));
    }
    WriteFile(path_, noise);
    Status st = LoadParameters(*module_, path_);
    // A random buffer passing magic+version+counts+names+dims+trailing
    // checks is astronomically unlikely; require rejection.
    ASSERT_FALSE(st.ok()) << "noise buffer of " << size << " bytes loaded";
  }
}

}  // namespace
}  // namespace eos::nn
