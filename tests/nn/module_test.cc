#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/densenet.h"
#include "nn/linear.h"
#include "nn/lr_schedule.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/resnet.h"
#include "nn/wide_resnet.h"
#include "tensor/tensor_ops.h"

namespace eos::nn {
namespace {

TEST(ResNetTest, PaperParameterCount) {
  // The paper quotes "a Resnet-32 with approx. 464K parameters".
  Rng rng(1);
  ResNetConfig config;
  config.blocks_per_stage = 5;  // ResNet-32
  config.base_width = 16;
  config.num_classes = 10;
  ImageClassifier net = BuildResNet(config, rng);
  int64_t params = net.NumParameters();
  EXPECT_GT(params, 440000);
  EXPECT_LT(params, 490000);
  EXPECT_EQ(net.feature_dim, 64);
  EXPECT_EQ(net.arch, "ResNet-32");
}

TEST(ResNetTest, ForwardShapes) {
  Rng rng(2);
  ResNetConfig config;
  config.blocks_per_stage = 1;  // ResNet-8
  config.base_width = 8;
  config.num_classes = 5;
  ImageClassifier net = BuildResNet(config, rng);
  Tensor x = Tensor::Uniform({3, 3, 16, 16}, -1.0f, 1.0f, rng);
  Tensor fe = net.ExtractFeatures(x, /*training=*/false);
  EXPECT_EQ(fe.size(0), 3);
  EXPECT_EQ(fe.size(1), 32);
  Tensor logits = net.Forward(x, /*training=*/false);
  EXPECT_EQ(logits.size(0), 3);
  EXPECT_EQ(logits.size(1), 5);
}

TEST(ResNetTest, NormHeadForLdam) {
  Rng rng(3);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.norm_head = true;
  config.head_scale = 30.0f;
  ImageClassifier net = BuildResNet(config, rng);
  EXPECT_NE(dynamic_cast<NormLinear*>(net.head.get()), nullptr);
  // Cosine logits are bounded by the scale.
  Tensor x = Tensor::Uniform({2, 3, 8, 8}, -1.0f, 1.0f, rng);
  Tensor logits = net.Forward(x, /*training=*/false);
  EXPECT_LE(MaxAbs(logits), 30.0f + 1e-3f);
}

TEST(WideResNetTest, WiderThanResNet) {
  Rng rng(4);
  WideResNetConfig wc;
  wc.blocks_per_stage = 1;
  wc.base_width = 8;
  wc.widen_factor = 2;
  ImageClassifier wrn = BuildWideResNet(wc, rng);
  ResNetConfig rc;
  rc.blocks_per_stage = 1;
  rc.base_width = 8;
  ImageClassifier resnet = BuildResNet(rc, rng);
  EXPECT_GT(wrn.NumParameters(), 2 * resnet.NumParameters());
  Tensor x = Tensor::Uniform({2, 3, 12, 12}, -1.0f, 1.0f, rng);
  Tensor fe = wrn.ExtractFeatures(x, false);
  EXPECT_EQ(fe.size(1), wrn.feature_dim);
}

TEST(DenseNetTest, ChannelGrowthAndShapes) {
  Rng rng(5);
  DenseNetConfig config;
  config.layers_per_block = 2;
  config.growth_rate = 4;
  ImageClassifier net = BuildDenseNet(config, rng);
  Tensor x = Tensor::Uniform({2, 3, 16, 16}, -1.0f, 1.0f, rng);
  Tensor fe = net.ExtractFeatures(x, false);
  EXPECT_EQ(fe.size(0), 2);
  EXPECT_EQ(fe.size(1), net.feature_dim);
  Tensor logits = net.Forward(x, false);
  EXPECT_EQ(logits.size(1), 10);
}

TEST(MlpTest, BuildsRequestedShape) {
  Rng rng(6);
  auto mlp = BuildMlp({8, 16, 4}, MlpHidden::kReLU, MlpOutput::kLinear, rng);
  Tensor x = Tensor::Uniform({5, 8}, -1.0f, 1.0f, rng);
  Tensor y = mlp->Forward(x, false);
  EXPECT_EQ(y.size(0), 5);
  EXPECT_EQ(y.size(1), 4);
}

TEST(MlpTest, OutputActivationsBound) {
  Rng rng(7);
  auto tanh_mlp = BuildMlp({4, 8, 3}, MlpHidden::kReLU, MlpOutput::kTanh, rng);
  auto sig_mlp =
      BuildMlp({4, 8, 3}, MlpHidden::kLeakyReLU, MlpOutput::kSigmoid, rng);
  Tensor x = Tensor::Uniform({10, 4}, -5.0f, 5.0f, rng);
  Tensor ty = tanh_mlp->Forward(x, false);
  Tensor sy = sig_mlp->Forward(x, false);
  for (int64_t i = 0; i < ty.numel(); ++i) {
    EXPECT_LE(std::fabs(ty.data()[i]), 1.0f);
    EXPECT_GE(sy.data()[i], 0.0f);
    EXPECT_LE(sy.data()[i], 1.0f);
  }
}

TEST(ModuleTest, ZeroGradAndFreeze) {
  Rng rng(8);
  Linear linear(4, 2, true, rng);
  linear.weight().grad.Fill(3.0f);
  linear.ZeroGrad();
  EXPECT_EQ(Sum(linear.weight().grad), 0.0);
  linear.SetTrainable(false);
  for (Parameter* p : linear.Parameters()) EXPECT_FALSE(p->trainable);
}

TEST(SgdTest, MatchesManualMomentumUpdate) {
  Rng rng(9);
  Linear linear(1, 1, /*bias=*/false, rng);
  Parameter& w = linear.weight();
  w.value.data()[0] = 1.0f;
  w.apply_weight_decay = false;

  Sgd::Options options;
  options.lr = 0.1;
  options.momentum = 0.9;
  options.weight_decay = 0.0;
  Sgd sgd({&w}, options);

  // Step 1: g=1 -> v=1, w = 1 - 0.1*1 = 0.9.
  w.grad.data()[0] = 1.0f;
  sgd.Step();
  EXPECT_NEAR(w.value.data()[0], 0.9f, 1e-6f);
  // Step 2: g=1 -> v=1.9, w = 0.9 - 0.19 = 0.71.
  sgd.Step();
  EXPECT_NEAR(w.value.data()[0], 0.71f, 1e-6f);
}

TEST(SgdTest, WeightDecayActsOnValue) {
  Rng rng(10);
  Linear linear(1, 1, /*bias=*/false, rng);
  Parameter& w = linear.weight();
  w.value.data()[0] = 2.0f;
  Sgd::Options options;
  options.lr = 0.5;
  options.momentum = 0.0;
  options.weight_decay = 0.1;
  Sgd sgd({&w}, options);
  w.grad.data()[0] = 0.0f;
  sgd.Step();
  // w -= lr * wd * w = 2 - 0.5*0.1*2 = 1.9.
  EXPECT_NEAR(w.value.data()[0], 1.9f, 1e-6f);
}

TEST(SgdTest, FrozenParameterUntouched) {
  Rng rng(11);
  Linear linear(1, 1, false, rng);
  Parameter& w = linear.weight();
  w.value.data()[0] = 5.0f;
  w.trainable = false;
  Sgd sgd({&w}, {});
  w.grad.data()[0] = 100.0f;
  sgd.Step();
  EXPECT_EQ(w.value.data()[0], 5.0f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  Rng rng(12);
  Linear linear(1, 1, false, rng);
  Parameter& w = linear.weight();
  w.value.data()[0] = 0.0f;
  w.apply_weight_decay = false;
  Adam::Options options;
  options.lr = 0.01;
  Adam adam({&w}, options);
  w.grad.data()[0] = 3.0f;  // any positive gradient
  adam.Step();
  // Bias-corrected first Adam step is ~ -lr * sign(g).
  EXPECT_NEAR(w.value.data()[0], -0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Rng rng(13);
  Linear linear(1, 1, false, rng);
  Parameter& w = linear.weight();
  w.value.data()[0] = 4.0f;
  w.apply_weight_decay = false;
  Adam::Options options;
  options.lr = 0.1;
  Adam adam({&w}, options);
  for (int i = 0; i < 400; ++i) {
    w.grad.data()[0] = 2.0f * (w.value.data()[0] - 1.0f);  // d/dw (w-1)^2
    adam.Step();
  }
  EXPECT_NEAR(w.value.data()[0], 1.0f, 0.05f);
}

TEST(LrScheduleTest, MultiStepDecaysAtMilestones) {
  MultiStepLr schedule(0.1, {10, 20}, 0.1);
  EXPECT_DOUBLE_EQ(schedule.LrAt(0), 0.1);
  EXPECT_DOUBLE_EQ(schedule.LrAt(9), 0.1);
  EXPECT_NEAR(schedule.LrAt(10), 0.01, 1e-12);
  EXPECT_NEAR(schedule.LrAt(25), 0.001, 1e-12);
}

TEST(LrScheduleTest, ForRunUses60And80Percent) {
  MultiStepLr schedule = MultiStepLr::ForRun(1.0, 100);
  EXPECT_DOUBLE_EQ(schedule.LrAt(59), 1.0);
  EXPECT_NEAR(schedule.LrAt(60), 0.1, 1e-12);
  EXPECT_NEAR(schedule.LrAt(80), 0.01, 1e-12);
}

TEST(LrScheduleTest, WarmupRampsUp) {
  ConstantLr inner(1.0);
  WarmupLr warmup(&inner, 4);
  EXPECT_LT(warmup.LrAt(0), warmup.LrAt(3));
  EXPECT_DOUBLE_EQ(warmup.LrAt(4), 1.0);
  EXPECT_DOUBLE_EQ(warmup.LrAt(10), 1.0);
}

TEST(NetworkTest, HeadAndExtractorParamsDisjoint) {
  Rng rng(14);
  ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  ImageClassifier net = BuildResNet(config, rng);
  auto ext = net.extractor->Parameters();
  auto head = net.head->Parameters();
  for (auto* e : ext) {
    for (auto* h : head) EXPECT_NE(e, h);
  }
  EXPECT_EQ(net.NumParameters(),
            net.extractor->NumParameters() + net.head->NumParameters());
}

}  // namespace
}  // namespace eos::nn
