// Model persistence workflow: train a phase-1 extractor once, save it, then
// reload it in a "fresh process" and run phases 2+3 with different samplers
// — the pattern a practitioner would use to amortize the expensive phase
// across many augmentation studies.
//
// Run: ./build/examples/save_load_workflow [--weights=/tmp/eos_model]

#include <cstdio>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/three_phase.h"
#include "metrics/classification_metrics.h"
#include "nn/serialize.h"
#include "tensor/tensor_ops.h"

int main(int argc, char** argv) {
  eos::FlagSet flags;
  std::string* weights =
      flags.AddString("weights", "/tmp/eos_model", "weights path prefix");
  int64_t* epochs = flags.AddInt("epochs", 20, "phase-1 epochs");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  eos::ExperimentConfig config;
  config.dataset = eos::DatasetKind::kCifar10Like;
  config.synth.image_size = 16;
  config.max_per_class = 150;
  config.imbalance_ratio = 50.0;
  config.test_per_class = 40;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.phase1.epochs = *epochs;
  config.phase1.lr = 0.05;
  config.seed = 5;

  // --- Session 1: train and persist. ---
  {
    eos::ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    std::printf("training phase-1 model (%lld epochs)...\n",
                static_cast<long long>(*epochs));
    pipeline.TrainPhase1();
    eos::Status save_status =
        eos::nn::SaveClassifier(pipeline.net(), *weights);
    if (!save_status.ok()) {
      std::fprintf(stderr, "save failed: %s\n",
                   save_status.ToString().c_str());
      return 1;
    }
    std::printf("saved weights to %s.{extractor,head}\n", weights->c_str());
  }

  // --- Session 2: reload into a fresh network, skip phase 1 entirely. ---
  {
    eos::Rng build_rng(99);  // unrelated init; weights are overwritten
    eos::ExperimentConfig data_config = config;
    eos::ExperimentPipeline data(data_config);
    data.Prepare();  // same seed -> identical split

    eos::nn::ImageClassifier net = eos::BuildNetwork(config, build_rng);
    eos::Status load_status = eos::nn::LoadClassifier(net, *weights);
    if (!load_status.ok()) {
      std::fprintf(stderr, "load failed: %s\n",
                   load_status.ToString().c_str());
      return 1;
    }
    std::printf("reloaded model; running phases 2+3 without retraining the "
                "extractor\n\n");

    eos::FeatureSet train_fe = eos::ExtractEmbeddings(net, data.train());
    eos::FeatureSet test_fe = eos::ExtractEmbeddings(net, data.test());

    for (eos::SamplerKind kind :
         {eos::SamplerKind::kSmote, eos::SamplerKind::kEos}) {
      eos::SamplerConfig sampler_config;
      sampler_config.kind = kind;
      sampler_config.k_neighbors =
          kind == eos::SamplerKind::kEos ? 10 : 5;
      auto sampler = MakeOversampler(sampler_config);
      eos::Rng rng(7);
      eos::FeatureSet balanced = sampler->Resample(train_fe, rng);
      eos::HeadRetrainOptions head_options;
      eos::Rng head_rng(8);
      eos::RetrainHead(net, balanced, head_options, head_rng);

      eos::Tensor logits = net.head->Forward(test_fe.features, false);
      eos::ConfusionMatrix confusion(test_fe.num_classes);
      confusion.AddAll(test_fe.labels, eos::ArgMaxRows(logits));
      std::printf("--- %s ---\n%s\n", SamplerKindName(kind),
                  eos::ClassificationReport(confusion).c_str());
    }
  }
  return 0;
}
