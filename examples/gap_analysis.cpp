// Generalization-gap study (the paper's §III-B measure as a standalone
// diagnostic): train a CNN on imbalanced data, then
//   * report the per-class gap alongside the class sizes (RQ1),
//   * split the test set into true/false positives and compare their gaps,
//   * optionally dump everything to CSV for plotting.
//
// Run: ./build/examples/gap_analysis [--ratio=100] [--csv=gap.csv]

#include <cmath>

#include "common/string_util.h"
#include <cstdio>

#include "common/csv.h"
#include "common/flags.h"
#include "core/pipeline.h"
#include "metrics/generalization_gap.h"
#include "tensor/tensor_ops.h"

int main(int argc, char** argv) {
  eos::FlagSet flags;
  double* ratio = flags.AddDouble("ratio", 50.0, "max:min imbalance ratio");
  int64_t* epochs = flags.AddInt("epochs", 25, "phase-1 epochs");
  int64_t* seed = flags.AddInt("seed", 3, "experiment seed");
  std::string* csv_path =
      flags.AddString("csv", "", "optional CSV output path");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  eos::ExperimentConfig config;
  config.dataset = eos::DatasetKind::kCifar10Like;
  config.synth.image_size = 16;
  config.max_per_class = 150;
  config.imbalance_ratio = *ratio;
  config.test_per_class = 40;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.phase1.epochs = *epochs;
  config.phase1.lr = 0.05;
  config.seed = static_cast<uint64_t>(*seed);

  eos::ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainPhase1();
  eos::EvalOutputs baseline = pipeline.EvaluateBaseline();

  // --- Per-class gap vs class size (Figure 3's black-line comparison). ---
  std::printf("Per-class generalization gap (train FE range vs test FE "
              "range, Manhattan with zero floor):\n\n");
  std::printf("  class  n_train     gap   recall\n");
  auto counts = pipeline.train_counts();
  for (size_t c = 0; c < counts.size(); ++c) {
    std::printf("  %5zu  %7lld  %6.2f   %6.3f\n", c,
                static_cast<long long>(counts[c]), baseline.gap.per_class[c],
                baseline.per_class_recall[c]);
  }

  // Rank correlation between class size and gap (expect strongly negative:
  // fewer samples -> wider gap).
  double corr = 0.0;
  {
    size_t n = counts.size();
    double mean_count = 0.0;
    double mean_gap = 0.0;
    for (size_t c = 0; c < n; ++c) {
      mean_count += static_cast<double>(counts[c]);
      mean_gap += baseline.gap.per_class[c];
    }
    mean_count /= static_cast<double>(n);
    mean_gap /= static_cast<double>(n);
    double cov = 0.0;
    double var_a = 0.0;
    double var_b = 0.0;
    for (size_t c = 0; c < n; ++c) {
      double a = static_cast<double>(counts[c]) - mean_count;
      double b = baseline.gap.per_class[c] - mean_gap;
      cov += a * b;
      var_a += a * a;
      var_b += b * b;
    }
    corr = cov / (std::sqrt(var_a * var_b) + 1e-12);
  }
  std::printf("\n  correlation(class size, gap) = %.3f  "
              "(paper: strongly negative — the gap follows imbalance)\n",
              corr);

  // --- TP vs FP gap (Figure 4). ---
  const eos::FeatureSet& test_fe = pipeline.test_embeddings();
  eos::Tensor logits =
      pipeline.net().head->Forward(test_fe.features, /*training=*/false);
  std::vector<int64_t> preds = eos::ArgMaxRows(logits);
  std::vector<int64_t> tp_rows;
  std::vector<int64_t> fp_rows;
  for (int64_t i = 0; i < test_fe.size(); ++i) {
    if (preds[static_cast<size_t>(i)] ==
        test_fe.labels[static_cast<size_t>(i)]) {
      tp_rows.push_back(i);
    } else {
      fp_rows.push_back(i);
    }
  }
  eos::FeatureSet tp_set = eos::SelectFeatures(test_fe, tp_rows);
  eos::FeatureSet fp_set = eos::SelectFeatures(test_fe, fp_rows);
  for (size_t i = 0; i < fp_rows.size(); ++i) {
    fp_set.labels[i] = preds[static_cast<size_t>(fp_rows[i])];
  }
  double tp_gap =
      eos::GeneralizationGap(pipeline.train_embeddings(), tp_set).mean;
  double fp_gap =
      eos::GeneralizationGap(pipeline.train_embeddings(), fp_set).mean;
  std::printf("\n  TP gap %.3f vs FP gap %.3f (FP/TP = %.2fx; paper: "
              "2x-4x)\n",
              tp_gap, fp_gap, fp_gap / std::max(tp_gap, 1e-9));

  if (!csv_path->empty()) {
    eos::CsvWriter csv;
    if (csv.Open(*csv_path).ok()) {
      // Best-effort diagnostics CSV: a failed row is tolerable, and
      // Close() below surfaces whether the file landed intact.
      (void)csv.WriteRow(  // diagnostics only; Close() reports health
          {"class", "n_train", "gap", "recall"});
      for (size_t c = 0; c < counts.size(); ++c) {
        (void)csv.WriteRow(  // diagnostics only; Close() reports health
            {std::to_string(c), std::to_string(counts[c]),
                            eos::StrFormat("%.4f", baseline.gap.per_class[c]),
                            eos::StrFormat("%.4f",
                                           baseline.per_class_recall[c])});
      }
      eos::Status close_status = csv.Close();
      if (close_status.ok()) {
        std::printf("\n  wrote %s\n", csv_path->c_str());
      } else {
        std::fprintf(stderr, "\n  csv write failed: %s\n",
                     close_status.ToString().c_str());
      }
    }
  }
  return 0;
}
