// Renders a grid of samples from each synthetic dataset simulator to PPM
// image files, so the substitution for the paper's image benchmarks can be
// inspected visually (any image viewer or `convert x.ppm x.png` works).
//
// Run: ./build/examples/dataset_preview [--out_dir=.] [--per_class=8]

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/synthetic_images.h"

namespace {

// Writes a [rows*S, cols*S] RGB grid of images as binary PPM (P6).
eos::Status WritePpmGrid(const std::string& path, const eos::Dataset& data,
                         int64_t rows, int64_t cols) {
  int64_t s = data.images.size(2);
  int64_t width = cols * s;
  int64_t height = rows * s;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return eos::Status::IoError("cannot open " + path);
  std::fprintf(f, "P6\n%lld %lld\n255\n", static_cast<long long>(width),
               static_cast<long long>(height));
  const float* x = data.images.data();
  int64_t plane = s * s;
  for (int64_t y = 0; y < height; ++y) {
    for (int64_t xx = 0; xx < width; ++xx) {
      int64_t tile = (y / s) * cols + (xx / s);
      int64_t py = y % s;
      int64_t px = xx % s;
      unsigned char rgb[3];
      if (tile < data.size()) {
        for (int c = 0; c < 3; ++c) {
          float v = x[(tile * 3 + c) * plane + py * s + px];
          v = std::min(1.0f, std::max(0.0f, v));
          rgb[c] = static_cast<unsigned char>(v * 255.0f);
        }
      } else {
        rgb[0] = rgb[1] = rgb[2] = 0;
      }
      std::fwrite(rgb, 1, 3, f);
    }
  }
  std::fclose(f);
  return eos::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  std::string* out_dir = flags.AddString("out_dir", ".", "output directory");
  int64_t* per_class = flags.AddInt("per_class", 8,
                                    "samples per class (grid columns)");
  int64_t* image_size = flags.AddInt("image_size", 16, "image edge size");
  int64_t* seed = flags.AddInt("seed", 1, "generation seed");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  for (eos::DatasetKind kind :
       {eos::DatasetKind::kCifar10Like, eos::DatasetKind::kSvhnLike,
        eos::DatasetKind::kCifar100Like, eos::DatasetKind::kCelebALike}) {
    eos::SyntheticConfig config;
    config.image_size = *image_size;
    eos::SyntheticImageGenerator generator(kind, config);
    // One row per class (CIFAR100-like shows the first 10 classes).
    int64_t classes_to_show =
        std::min<int64_t>(generator.num_classes(), 10);
    std::vector<int64_t> counts(
        static_cast<size_t>(generator.num_classes()), 0);
    for (int64_t c = 0; c < classes_to_show; ++c) {
      counts[static_cast<size_t>(c)] = *per_class;
    }
    eos::Rng rng(static_cast<uint64_t>(*seed));
    eos::Dataset data = generator.Generate(counts, rng);
    // Re-order row-major by class for the grid.
    std::vector<int64_t> order;
    for (int64_t c = 0; c < classes_to_show; ++c) {
      for (int64_t i : data.ClassIndices(c)) order.push_back(i);
    }
    eos::Dataset grid = eos::SelectExamples(data, order);

    std::string name = eos::DatasetKindName(kind);
    for (char& ch : name) {
      if (ch == '-' || ch == ' ') ch = '_';
    }
    std::string path = *out_dir + "/preview_" + name + ".ppm";
    eos::Status write_status =
        WritePpmGrid(path, grid, classes_to_show, *per_class);
    if (!write_status.ok()) {
      std::fprintf(stderr, "%s\n", write_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%lld classes x %lld samples)\n", path.c_str(),
                static_cast<long long>(classes_to_show),
                static_cast<long long>(*per_class));
  }
  return 0;
}
