// Long-tailed recognition scenario: a configurable end-to-end workflow over
// any of the four dataset simulators, any of the four losses, and any
// over-sampler — the workloads the paper's introduction motivates.
//
// Examples:
//   ./build/examples/imbalanced_training --dataset=cifar100 --loss=ldam
//   ./build/examples/imbalanced_training --sampler=bsmote --ratio=100
//   ./build/examples/imbalanced_training --sampler=eos --k=50 --epochs=40

#include <cstdio>

#include "common/flags.h"
#include "core/pipeline.h"

namespace {

eos::DatasetKind ParseDataset(const std::string& name) {
  if (name == "cifar10") return eos::DatasetKind::kCifar10Like;
  if (name == "svhn") return eos::DatasetKind::kSvhnLike;
  if (name == "cifar100") return eos::DatasetKind::kCifar100Like;
  if (name == "celeba") return eos::DatasetKind::kCelebALike;
  std::fprintf(stderr, "unknown dataset '%s', using cifar10\n", name.c_str());
  return eos::DatasetKind::kCifar10Like;
}

eos::LossKind ParseLoss(const std::string& name) {
  if (name == "ce") return eos::LossKind::kCrossEntropy;
  if (name == "asl") return eos::LossKind::kAsl;
  if (name == "focal") return eos::LossKind::kFocal;
  if (name == "ldam") return eos::LossKind::kLdam;
  std::fprintf(stderr, "unknown loss '%s', using ce\n", name.c_str());
  return eos::LossKind::kCrossEntropy;
}

eos::SamplerKind ParseSampler(const std::string& name) {
  if (name == "random") return eos::SamplerKind::kRandom;
  if (name == "smote") return eos::SamplerKind::kSmote;
  if (name == "bsmote") return eos::SamplerKind::kBorderlineSmote;
  if (name == "adasyn") return eos::SamplerKind::kAdasyn;
  if (name == "balsvm") return eos::SamplerKind::kBalancedSvm;
  if (name == "remix") return eos::SamplerKind::kRemix;
  if (name == "eos") return eos::SamplerKind::kEos;
  std::fprintf(stderr, "unknown sampler '%s', using eos\n", name.c_str());
  return eos::SamplerKind::kEos;
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  std::string* dataset = flags.AddString(
      "dataset", "cifar10", "cifar10 | svhn | cifar100 | celeba");
  std::string* loss =
      flags.AddString("loss", "ce", "ce | asl | focal | ldam");
  std::string* sampler_name = flags.AddString(
      "sampler", "eos", "random|smote|bsmote|adasyn|balsvm|remix|eos");
  int64_t* epochs = flags.AddInt("epochs", 25, "phase-1 epochs");
  int64_t* max_per_class = flags.AddInt("max_per_class", 150,
                                        "largest class size");
  double* ratio = flags.AddDouble("ratio", 50.0, "max:min imbalance ratio");
  int64_t* k = flags.AddInt("k", 10, "neighborhood size");
  int64_t* seed = flags.AddInt("seed", 1, "experiment seed");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }

  eos::ExperimentConfig config;
  config.dataset = ParseDataset(*dataset);
  config.loss.kind = ParseLoss(*loss);
  config.synth.image_size = 16;
  config.max_per_class = *max_per_class;
  config.imbalance_ratio = *ratio;
  config.test_per_class = 40;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.phase1.epochs = *epochs;
  config.phase1.lr = 0.05;
  config.seed = static_cast<uint64_t>(*seed);
  if (config.dataset == eos::DatasetKind::kCifar100Like) {
    // CIFAR-100 analogue: 10x fewer per class, milder ratio (paper IV-A).
    config.max_per_class = std::max<int64_t>(8, *max_per_class / 8);
    config.imbalance_ratio = 10.0;
    config.test_per_class = 10;
  }

  std::printf("Dataset %s | loss %s | sampler %s | imbalance %.0f:1\n",
              eos::DatasetKindName(config.dataset),
              eos::LossKindName(config.loss.kind), sampler_name->c_str(),
              config.imbalance_ratio);

  eos::ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  std::printf("train %lld examples / test %lld examples\n",
              static_cast<long long>(pipeline.train().size()),
              static_cast<long long>(pipeline.test().size()));
  pipeline.TrainPhase1();

  eos::EvalOutputs baseline = pipeline.EvaluateBaseline();
  std::printf("\nbaseline (%s only):   %s  gap %.2f\n",
              eos::LossKindName(config.loss.kind),
              baseline.metrics.ToString().c_str(), baseline.gap.mean);

  eos::SamplerConfig sampler;
  sampler.kind = ParseSampler(*sampler_name);
  sampler.k_neighbors = *k;
  eos::EvalOutputs out = pipeline.RunSampler(sampler);
  std::printf("with %-8s           %s  gap %.2f  (%.2fs)\n",
              sampler_name->c_str(), out.metrics.ToString().c_str(),
              out.gap.mean, out.seconds);

  std::printf("\nper-class recall (majority -> minority):\n");
  std::printf("  class   n_train  baseline  resampled\n");
  auto counts = pipeline.train_counts();
  for (size_t c = 0; c < counts.size(); ++c) {
    if (counts.size() > 20 && c % 10 != 0) continue;  // subsample 100-class
    std::printf("  %5zu   %7lld  %8.3f  %9.3f\n", c,
                static_cast<long long>(counts[c]),
                baseline.per_class_recall[c], out.per_class_recall[c]);
  }
  return 0;
}
