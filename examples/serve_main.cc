// Serving quickstart: the deployment story for the three-phase framework.
// Trains a phase-1 model at laptop scale (or reuses an existing snapshot),
// loads it into serve::ModelSession replicas, and drives a micro-batching
// serve::Server with closed-loop synthetic clients. On exit it verifies
// every served label against the offline core::Predict reference — the
// serving determinism guarantee — and prints the latency/throughput stats.
//
// Run: ./build/examples/serve_main
//      ./build/examples/serve_main --clients=8 --requests=400 --workers=4

#include <cstdio>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "nn/serialize.h"
#include "serve/server.h"
#include "tensor/tensor_ops.h"

namespace {

eos::Tensor SampleImage(const eos::Tensor& images, int64_t i) {
  return eos::GatherImages(images, {i})
      .Reshape({images.size(1), images.size(2), images.size(3)});
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  std::string* weights =
      flags.AddString("weights", "/tmp/eos_serve_model", "snapshot prefix");
  bool* retrain = flags.AddBool(
      "retrain", false, "retrain phase 1 even if the snapshot exists");
  int64_t* epochs = flags.AddInt("epochs", 6, "phase-1 epochs");
  int64_t* clients = flags.AddInt("clients", 4, "closed-loop client threads");
  int64_t* requests = flags.AddInt("requests", 200, "total requests to serve");
  int64_t* workers = flags.AddInt("workers", 2, "server worker loops");
  int64_t* replicas = flags.AddInt("replicas", 2, "model session replicas");
  int64_t* max_batch = flags.AddInt("max_batch", 16, "micro-batch size cap");
  int64_t* delay_us =
      flags.AddInt("delay_us", 1000, "max queue delay per request (us)");
  int64_t* depth = flags.AddInt("depth", 256, "queue depth (backpressure)");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  eos::ExperimentConfig config;
  config.dataset = eos::DatasetKind::kCifar10Like;
  config.synth.image_size = 16;
  config.max_per_class = 100;
  config.imbalance_ratio = 50.0;
  config.test_per_class = 40;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.phase1.epochs = *epochs;
  config.phase1.lr = 0.05;
  config.seed = 5;

  eos::ExperimentPipeline pipeline(config);
  pipeline.Prepare();

  // --- Obtain the snapshot: reuse if present, else train phase 1 once. ---
  {
    eos::Rng probe_rng(1);
    eos::nn::ImageClassifier probe = eos::BuildNetwork(config, probe_rng);
    if (*retrain || !eos::nn::LoadClassifier(probe, *weights).ok()) {
      std::printf("training phase-1 model (%lld epochs)...\n",
                  static_cast<long long>(*epochs));
      pipeline.TrainPhase1();
      eos::Status save_status =
          eos::nn::SaveClassifier(pipeline.net(), *weights);
      if (!save_status.ok()) {
        std::fprintf(stderr, "save failed: %s\n",
                     save_status.ToString().c_str());
        return 1;
      }
      std::printf("saved snapshot to %s.{extractor,head}\n",
                  weights->c_str());
    } else {
      std::printf("reusing snapshot %s.{extractor,head}\n", weights->c_str());
    }
  }

  // --- Offline reference: the served labels must match these bitwise. ---
  const eos::Tensor& images = pipeline.test().images;
  eos::Rng ref_rng(2);
  eos::nn::ImageClassifier reference_net = eos::BuildNetwork(config, ref_rng);
  if (eos::Status s = eos::nn::LoadClassifier(reference_net, *weights);
      !s.ok()) {
    std::fprintf(stderr, "reference load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<int64_t> reference = eos::Predict(reference_net, images);

  // --- Load session replicas and start the server. ---
  std::vector<std::shared_ptr<eos::serve::ModelSession>> sessions;
  for (int64_t r = 0; r < *replicas; ++r) {
    eos::Rng rng(100 + static_cast<uint64_t>(r));
    auto session = eos::serve::ModelSession::Load(
        eos::BuildNetwork(config, rng), *weights);
    if (!session.ok()) {
      std::fprintf(stderr, "session load failed: %s\n",
                   session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(std::move(session).value());
  }
  eos::serve::ServerOptions options;
  options.num_workers = static_cast<int>(*workers);
  options.batcher.max_batch_size = *max_batch;
  options.batcher.max_queue_delay_us = *delay_us;
  options.batcher.max_queue_depth = *depth;
  eos::serve::Server server(sessions, options);
  std::printf(
      "serving %s (%lld classes) with %lld workers / %lld replicas, "
      "max_batch %lld, delay %lld us\n",
      sessions[0]->arch().c_str(),
      static_cast<long long>(sessions[0]->num_classes()),
      static_cast<long long>(*workers), static_cast<long long>(*replicas),
      static_cast<long long>(*max_batch), static_cast<long long>(*delay_us));

  // --- Closed-loop synthetic load: every client waits for its answer
  // before sending the next request, retrying on backpressure. ---
  int64_t total = *requests;
  int64_t n_images = images.size(0);
  std::vector<int64_t> served(static_cast<size_t>(total), -1);
  std::vector<int64_t> retries(static_cast<size_t>(*clients), 0);
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < *clients; ++c) {
    client_threads.emplace_back([&, c] {
      for (int64_t i = c; i < total; i += *clients) {
        eos::Tensor image = SampleImage(images, i % n_images);
        for (;;) {
          auto f = server.Submit(image);
          if (f.ok()) {
            // The future carries the request's terminal status; with no
            // faults armed and no deadline set it is always OK here.
            eos::Result<eos::serve::Prediction> r =
                std::move(f).value().get();
            if (r.ok()) {
              served[static_cast<size_t>(i)] = r->label;
              break;
            }
            std::fprintf(stderr, "request %lld failed: %s\n",
                         static_cast<long long>(i),
                         r.status().ToString().c_str());
            break;
          }
          ++retries[static_cast<size_t>(c)];
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : client_threads) t.join();
  server.Shutdown();

  // --- Verify the serving determinism guarantee. ---
  int64_t mismatches = 0;
  for (int64_t i = 0; i < total; ++i) {
    if (served[static_cast<size_t>(i)] !=
        reference[static_cast<size_t>(i % n_images)]) {
      ++mismatches;
    }
  }
  int64_t total_retries = 0;
  for (int64_t r : retries) total_retries += r;

  eos::serve::StatsSnapshot stats = server.Stats();
  std::printf("\n%s\n\n", stats.ToJson().c_str());
  std::printf("served %lld requests at %.0f req/s  "
              "(p50 %.0f us, p95 %.0f us, p99 %.0f us, mean batch %.2f, "
              "%lld backpressure retries)\n",
              static_cast<long long>(stats.completed), stats.throughput_rps,
              stats.p50_us, stats.p95_us, stats.p99_us, stats.mean_batch_size,
              static_cast<long long>(total_retries));
  if (mismatches == 0) {
    std::printf("determinism check: all %lld served labels match offline "
                "core::Predict\n",
                static_cast<long long>(total));
  } else {
    std::fprintf(stderr,
                 "determinism check FAILED: %lld/%lld served labels differ "
                 "from offline core::Predict\n",
                 static_cast<long long>(mismatches),
                 static_cast<long long>(total));
    return 1;
  }
  return 0;
}
