// Extending the framework: the Oversampler interface accepts any strategy,
// so phase 2 is a plug-in point. This example implements a simple custom
// sampler — Gaussian jitter around minority rows — and benchmarks it
// against SMOTE and EOS inside the identical three-phase pipeline.
//
// Run: ./build/examples/custom_sampler

#include <cstdio>

#include <cmath>
#include "core/pipeline.h"
#include "sampling/oversampler.h"
#include "tensor/tensor_ops.h"

namespace {

// A deliberately naive strategy: duplicate minority rows with isotropic
// Gaussian noise scaled to each dimension's class standard deviation. Like
// SMOTE it cannot reach outside the class's local neighborhood, so expect
// it to trail EOS on the generalization gap.
class GaussianJitterSampler : public eos::Oversampler {
 public:
  explicit GaussianJitterSampler(float noise_scale = 0.25f)
      : noise_scale_(noise_scale) {}

  eos::FeatureSet Resample(const eos::FeatureSet& data,
                           eos::Rng& rng) override {
    auto counts = data.ClassCounts();
    auto targets = eos::BalancedTargetCounts(counts);
    int64_t d = data.features.size(1);
    std::vector<float> synth;
    std::vector<int64_t> labels;
    for (int64_t c = 0; c < data.num_classes; ++c) {
      int64_t needed = targets[static_cast<size_t>(c)] -
                       counts[static_cast<size_t>(c)];
      if (needed <= 0 || counts[static_cast<size_t>(c)] == 0) continue;
      std::vector<int64_t> rows = data.ClassIndices(c);
      // Per-dimension standard deviation of the class.
      std::vector<float> stddev(static_cast<size_t>(d), 0.0f);
      std::vector<float> mean(static_cast<size_t>(d), 0.0f);
      for (int64_t row : rows) {
        for (int64_t j = 0; j < d; ++j) {
          mean[static_cast<size_t>(j)] += data.features.at(row, j);
        }
      }
      for (float& m : mean) m /= static_cast<float>(rows.size());
      for (int64_t row : rows) {
        for (int64_t j = 0; j < d; ++j) {
          float diff = data.features.at(row, j) - mean[static_cast<size_t>(j)];
          stddev[static_cast<size_t>(j)] += diff * diff;
        }
      }
      for (float& s : stddev) {
        s = std::sqrt(s / static_cast<float>(rows.size())) + 1e-4f;
      }
      for (int64_t s = 0; s < needed; ++s) {
        int64_t base = rows[static_cast<size_t>(
            rng.UniformInt(static_cast<int64_t>(rows.size())))];
        for (int64_t j = 0; j < d; ++j) {
          synth.push_back(data.features.at(base, j) +
                          rng.Normal(0.0f, noise_scale_ *
                                               stddev[static_cast<size_t>(j)]));
        }
        labels.push_back(c);
      }
    }
    return eos::internal::FinalizeResample(data, synth, labels);
  }

  std::string name() const override { return "GaussJitter"; }

 private:
  float noise_scale_;
};

}  // namespace

int main() {
  eos::ExperimentConfig config;
  config.dataset = eos::DatasetKind::kCifar10Like;
  config.synth.image_size = 16;
  config.max_per_class = 150;
  config.imbalance_ratio = 50.0;
  config.test_per_class = 40;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.phase1.epochs = 25;
  config.phase1.lr = 0.05;
  config.seed = 11;

  eos::ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainPhase1();

  std::printf("method        BAC     GM     FM    gap\n");
  eos::EvalOutputs baseline = pipeline.EvaluateBaseline();
  std::printf("baseline    %.4f %.4f %.4f  %5.2f\n", baseline.metrics.bac,
              baseline.metrics.gmean, baseline.metrics.f1,
              baseline.gap.mean);

  GaussianJitterSampler jitter;
  eos::EvalOutputs jitter_out = pipeline.RunSampler(jitter);
  std::printf("%-10s  %.4f %.4f %.4f  %5.2f\n", jitter.name().c_str(),
              jitter_out.metrics.bac, jitter_out.metrics.gmean,
              jitter_out.metrics.f1, jitter_out.gap.mean);

  for (eos::SamplerKind kind :
       {eos::SamplerKind::kSmote, eos::SamplerKind::kEos}) {
    eos::SamplerConfig sampler;
    sampler.kind = kind;
    sampler.k_neighbors = kind == eos::SamplerKind::kEos ? 10 : 5;
    eos::EvalOutputs out = pipeline.RunSampler(sampler);
    std::printf("%-10s  %.4f %.4f %.4f  %5.2f\n", SamplerKindName(kind),
                out.metrics.bac, out.metrics.gmean, out.metrics.f1,
                out.gap.mean);
  }
  std::printf("\nAny Oversampler subclass slots into phase 2 — see "
              "sampling/oversampler.h.\n");
  return 0;
}
