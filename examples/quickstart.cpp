// Quickstart: the whole three-phase EOS framework in one page.
//
//   1. synthesize an exponentially imbalanced image dataset (100:1)
//   2. phase 1 — train a ResNet end-to-end on the imbalanced data
//   3. phase 2 — extract feature embeddings and balance them with EOS
//   4. phase 3 — fine-tune only the classifier head on the balanced set
//   5. compare balanced accuracy and the generalization gap before/after
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "sampling/eos.h"

int main() {
  // --- Configure a small experiment (see ExperimentConfig for knobs). ---
  eos::ExperimentConfig config;
  config.dataset = eos::DatasetKind::kCifar10Like;
  config.synth.image_size = 16;
  config.max_per_class = 120;       // largest class
  config.imbalance_ratio = 100.0;   // exponential profile, 100:1 like CIFAR
  config.test_per_class = 30;       // balanced test split
  config.blocks_per_stage = 1;      // ResNet-8
  config.base_width = 8;
  config.phase1.epochs = 20;
  config.phase1.lr = 0.05;
  config.loss.kind = eos::LossKind::kCrossEntropy;
  config.head.epochs = 10;          // the paper's cheap head retrain
  config.seed = 7;

  eos::ExperimentPipeline pipeline(config);

  std::printf("Generating imbalanced training data...\n");
  pipeline.Prepare();
  auto counts = pipeline.train_counts();
  std::printf("  per-class train counts: ");
  for (int64_t c : counts) std::printf("%lld ", static_cast<long long>(c));
  std::printf("\n");

  std::printf("Phase 1: training a ResNet-8 end-to-end on %s...\n",
              eos::DatasetKindName(config.dataset));
  pipeline.TrainPhase1();
  std::printf("  network: %s, %lld parameters (%lld in the head)\n",
              pipeline.net().arch.c_str(),
              static_cast<long long>(pipeline.net().NumParameters()),
              static_cast<long long>(pipeline.net().head->NumParameters()));
  eos::EvalOutputs baseline = pipeline.EvaluateBaseline();
  std::printf("  baseline:  %s   generalization gap %.2f\n",
              baseline.metrics.ToString().c_str(), baseline.gap.mean);

  std::printf("Phases 2+3: EOS over-sampling in embedding space + head "
              "retrain...\n");
  eos::SamplerConfig sampler;
  sampler.kind = eos::SamplerKind::kEos;
  sampler.k_neighbors = 10;  // the paper's default K
  eos::EvalOutputs with_eos = pipeline.RunSampler(sampler);
  std::printf("  with EOS:  %s   generalization gap %.2f   (%.2fs)\n",
              with_eos.metrics.ToString().c_str(), with_eos.gap.mean,
              with_eos.seconds);

  std::printf("\nMinority-class recall (classes ordered majority -> "
              "minority):\n  baseline:");
  for (double r : baseline.per_class_recall) std::printf(" %.2f", r);
  std::printf("\n  with EOS:");
  for (double r : with_eos.per_class_recall) std::printf(" %.2f", r);
  std::printf("\n\nBAC %+.4f, gap %+0.2f after EOS.\n",
              with_eos.metrics.bac - baseline.metrics.bac,
              with_eos.gap.mean - baseline.gap.mean);
  return 0;
}
