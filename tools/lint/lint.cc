#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace eos::lint {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when source[pos, pos + token.size()) is `token` with non-word
/// characters (or file boundaries) on both sides. ':' does not count as a
/// word character, so "std::mutex" still matches inside "::std::mutex".
bool TokenAt(const std::string& source, size_t pos, const std::string& token) {
  if (source.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsWordChar(source[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < source.size() && IsWordChar(source[end])) return false;
  return true;
}

size_t SkipSpaces(const std::string& source, size_t pos) {
  while (pos < source.size() &&
         (source[pos] == ' ' || source[pos] == '\t' || source[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

/// Last non-space character strictly before `pos`, or '\0' at file start.
char PrevNonSpace(const std::string& source, size_t pos) {
  while (pos > 0) {
    --pos;
    char c = source[pos];
    if (c != ' ' && c != '\t' && c != '\n') return c;
  }
  return '\0';
}

int LineOfOffset(const std::string& source, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(source.begin(), source.begin() + pos, '\n'));
}

/// The 1-based line `line` of `source` (without the trailing newline).
std::string LineText(const std::string& source, int line) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    start = source.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  size_t end = source.find('\n', start);
  return source.substr(start, end == std::string::npos ? end : end - start);
}

bool PathStartsWith(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

/// A token whose presence (optionally only as a call, `token (`) violates a
/// rule unless the file path is exempt.
struct BannedToken {
  const char* token;
  bool call_only;  // require '(' after the token (skipping whitespace)
  const char* message;
};

constexpr BannedToken kRngTokens[] = {
    {"rand", true,
     "banned RNG: rand() is unseeded global state; draw from eos::Rng"},
    {"srand", true,
     "banned RNG: srand() reseeds global state; construct an eos::Rng"},
    {"drand48", true,
     "banned RNG: drand48() is unseeded global state; draw from eos::Rng"},
    {"srand48", true,
     "banned RNG: srand48() reseeds global state; construct an eos::Rng"},
    {"random_device", false,
     "banned RNG: std::random_device is nondeterministic by design; "
     "seed an eos::Rng instead"},
    {"mt19937", false,
     "banned RNG: raw std::mt19937 bypasses eos::Rng; all randomness must "
     "flow through a seeded Rng for bit-for-bit reproducibility"},
    {"mt19937_64", false,
     "banned RNG: raw std::mt19937_64 bypasses eos::Rng; all randomness "
     "must flow through a seeded Rng for bit-for-bit reproducibility"},
    {"time", true,
     "banned clock: time() makes runs time-dependent; use eos::Stopwatch "
     "for intervals"},
    {"system_clock", false,
     "banned clock: system_clock is wall time (not monotonic, not "
     "reproducible); use steady_clock via eos::Stopwatch"},
};

/// Paths where wall-clock / entropy sources are legitimately needed:
/// the serving layer timestamps real traffic, and the stopwatch is the
/// sanctioned wrapper itself.
bool RngExempt(const std::string& path) {
  return PathStartsWith(path, "serve/") || path == "common/stopwatch.h";
}

/// Deterministic result paths: iteration order of unordered containers
/// would leak implementation details into sampler output and metrics.
bool UnorderedScoped(const std::string& path) {
  return PathStartsWith(path, "sampling/") || PathStartsWith(path, "core/") ||
         PathStartsWith(path, "metrics/");
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  return StrFormat("%s:%d: [%s] %s", finding.path.c_str(), finding.line,
                   finding.rule.c_str(), finding.message.c_str());
}

std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  size_t i = 0;
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < source.size()) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsWordChar(source[i - 1]))) {
          // Raw string R"delim( ... )delim": find the delimiter, then the
          // matching close sequence; blank the whole literal.
          size_t open = source.find('(', i + 2);
          if (open == std::string::npos) {
            ++i;
            break;
          }
          std::string close;
          close.push_back(')');
          close.append(source, i + 2, open - (i + 2));
          close.push_back('"');
          size_t end = source.find(close, open + 1);
          size_t stop = end == std::string::npos ? source.size()
                                                 : end + close.size();
          for (size_t j = i; j < stop; ++j) blank(j);
          i = stop;
        } else if (c == '"') {
          state = State::kString;
          blank(i);
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          blank(i);
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          blank(i);
          if (i + 1 < source.size()) blank(i + 1);
          i += 2;
        } else {
          if (c == quote) state = State::kCode;
          blank(i);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

namespace {

/// True when the finding's line (or the one above) carries a
/// `lint:allow(<rule>)` marker in the original source.
bool Suppressed(const std::string& original, int line, const char* rule) {
  std::string marker = StrFormat("lint:allow(%s)", rule);
  if (LineText(original, line).find(marker) != std::string::npos) return true;
  return line > 1 &&
         LineText(original, line - 1).find(marker) != std::string::npos;
}

void Emit(std::vector<Finding>& findings, const std::string& original,
          const std::string& path, size_t offset, const char* rule,
          std::string message) {
  int line = LineOfOffset(original, offset);
  if (Suppressed(original, line, rule)) return;
  findings.push_back(Finding{path, line, rule, std::move(message)});
}

void CheckBannedTokens(const std::string& path, const std::string& original,
                       const std::string& stripped,
                       std::vector<Finding>& findings, bool unordered) {
  if (!RngExempt(path)) {
    for (const BannedToken& banned : kRngTokens) {
      std::string token = banned.token;
      for (size_t pos = stripped.find(token); pos != std::string::npos;
           pos = stripped.find(token, pos + 1)) {
        if (!TokenAt(stripped, pos, token)) continue;
        if (banned.call_only) {
          size_t after = SkipSpaces(stripped, pos + token.size());
          if (after >= stripped.size() || stripped[after] != '(') continue;
        }
        Emit(findings, original, path, pos, "banned-rng", banned.message);
      }
    }
  }
  if (unordered && UnorderedScoped(path)) {
    for (const char* token : {"unordered_map", "unordered_set"}) {
      for (size_t pos = stripped.find(token); pos != std::string::npos;
           pos = stripped.find(token, pos + 1)) {
        if (!TokenAt(stripped, pos, token)) continue;
        Emit(findings, original, path, pos, "unordered-container",
             StrFormat("std::%s in a deterministic path: iteration order "
                       "is implementation-defined; use std::map / sorted "
                       "vectors",
                       token));
      }
    }
  }
}

void CheckNakedNew(const std::string& path, const std::string& original,
                   const std::string& stripped,
                   std::vector<Finding>& findings) {
  for (size_t pos = stripped.find("new"); pos != std::string::npos;
       pos = stripped.find("new", pos + 1)) {
    if (!TokenAt(stripped, pos, "new")) continue;
    Emit(findings, original, path, pos, "naked-new",
         "naked new: allocate via make_unique/make_shared or a container");
  }
  for (size_t pos = stripped.find("delete"); pos != std::string::npos;
       pos = stripped.find("delete", pos + 1)) {
    if (!TokenAt(stripped, pos, "delete")) continue;
    // `Foo(const Foo&) = delete;` declares a deleted function — fine.
    if (PrevNonSpace(stripped, pos) == '=') continue;
    Emit(findings, original, path, pos, "naked-new",
         "naked delete: ownership belongs in a smart pointer or container");
  }
}

void CheckMutexAnnotations(const std::string& path,
                           const std::string& original,
                           const std::string& stripped,
                           std::vector<Finding>& findings) {
  size_t pos = stripped.find("std::mutex");
  while (pos != std::string::npos && !TokenAt(stripped, pos, "std::mutex")) {
    pos = stripped.find("std::mutex", pos + 1);
  }
  if (pos == std::string::npos) return;
  // Look for the include directive itself (not a mention in a comment).
  if (original.find("#include \"common/thread_annotations.h\"") !=
      std::string::npos) {
    return;
  }
  Emit(findings, original, path, pos, "mutex-annotations",
       "std::mutex without #include \"common/thread_annotations.h\": "
       "annotate the guarded members (GUARDED_BY) so clang -Wthread-safety "
       "can check the lock discipline");
}

void CheckVoidCasts(const std::string& path, const std::string& original,
                    const std::string& stripped,
                    std::vector<Finding>& findings) {
  for (size_t pos = stripped.find("(void)"); pos != std::string::npos;
       pos = stripped.find("(void)", pos + 1)) {
    size_t p = SkipSpaces(stripped, pos + 6);
    // A discarded *call*: identifier chars (possibly qualified / chained
    // with :: . -> and intermediate calls) ending in '('. A bare
    // `(void)param;` unused-parameter cast has no '(' and is fine.
    size_t q = p;
    bool saw_call = false;
    while (q < stripped.size()) {
      char c = stripped[q];
      if (IsWordChar(c) || c == ':' || c == '.' || c == ' ') {
        ++q;
      } else if (c == '-' && q + 1 < stripped.size() &&
                 stripped[q + 1] == '>') {
        q += 2;
      } else if (c == '(') {
        saw_call = q > p;
        break;
      } else {
        break;
      }
    }
    if (!saw_call) continue;
    int line = LineOfOffset(original, pos);
    if (LineText(original, line).find("//") != std::string::npos) continue;
    Emit(findings, original, path, pos, "void-cast-needs-comment",
         "discarded call cast to (void) without a same-line // comment "
         "justifying the dropped Status/Result");
  }
}

}  // namespace

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source, Profile profile) {
  std::string stripped = StripCommentsAndStrings(source);
  std::vector<Finding> findings;
  CheckBannedTokens(path, source, stripped, findings,
                    /*unordered=*/profile == Profile::kStrict);
  CheckMutexAnnotations(path, source, stripped, findings);
  if (profile == Profile::kStrict) {
    CheckNakedNew(path, source, stripped, findings);
    CheckVoidCasts(path, source, stripped, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

Result<std::vector<Finding>> LintTree(const std::string& root,
                                      Profile profile) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound(
        StrFormat("lint root is not a directory: %s", root.c_str()));
  }
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    // Fixture trees are deliberately rule-breaking linter *test data*
    // (tests/tools/lint_fixtures/); they are linted by lint_test.cc with
    // their own root, never as part of a real source tree.
    if (it->is_directory() && it->path().filename() == "lint_fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    return Status::IoError(StrFormat("failed to walk %s: %s", root.c_str(),
                                     ec.message().c_str()));
  }
  std::sort(files.begin(), files.end());
  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status::IoError(
          StrFormat("failed to read %s", file.string().c_str()));
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    std::string rel =
        fs::path(file).lexically_relative(root).generic_string();
    std::vector<Finding> file_findings =
        LintFile(rel, contents.str(), profile);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace eos::lint
