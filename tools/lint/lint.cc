#include "lint.h"

#include <algorithm>

#include "common/string_util.h"
#include "scan.h"

namespace eos::lint {

namespace {

using scan::IsWordChar;
using scan::PrevNonSpace;
using scan::SkipSpaces;
using scan::TokenAt;

bool PathStartsWith(const std::string& path, const std::string& prefix) {
  return path.compare(0, prefix.size(), prefix) == 0;
}

/// A token whose presence (optionally only as a call, `token (`) violates a
/// rule unless the file path is exempt.
struct BannedToken {
  const char* token;
  bool call_only;  // require '(' after the token (skipping whitespace)
  const char* message;
};

constexpr BannedToken kRngTokens[] = {
    {"rand", true,
     "banned RNG: rand() is unseeded global state; draw from eos::Rng"},
    {"srand", true,
     "banned RNG: srand() reseeds global state; construct an eos::Rng"},
    {"drand48", true,
     "banned RNG: drand48() is unseeded global state; draw from eos::Rng"},
    {"srand48", true,
     "banned RNG: srand48() reseeds global state; construct an eos::Rng"},
    {"random_device", false,
     "banned RNG: std::random_device is nondeterministic by design; "
     "seed an eos::Rng instead"},
    {"mt19937", false,
     "banned RNG: raw std::mt19937 bypasses eos::Rng; all randomness must "
     "flow through a seeded Rng for bit-for-bit reproducibility"},
    {"mt19937_64", false,
     "banned RNG: raw std::mt19937_64 bypasses eos::Rng; all randomness "
     "must flow through a seeded Rng for bit-for-bit reproducibility"},
    {"time", true,
     "banned clock: time() makes runs time-dependent; use eos::Stopwatch "
     "for intervals"},
    {"system_clock", false,
     "banned clock: system_clock is wall time (not monotonic, not "
     "reproducible); use steady_clock via eos::Stopwatch"},
};

/// Paths where wall-clock / entropy sources are legitimately needed:
/// the serving layer timestamps real traffic, and the stopwatch is the
/// sanctioned wrapper itself.
bool RngExempt(const std::string& path) {
  return PathStartsWith(path, "serve/") || path == "common/stopwatch.h";
}

/// Deterministic result paths: iteration order of unordered containers
/// would leak implementation details into sampler output and metrics.
bool UnorderedScoped(const std::string& path) {
  return PathStartsWith(path, "sampling/") || PathStartsWith(path, "core/") ||
         PathStartsWith(path, "metrics/");
}

void Emit(std::vector<Finding>& findings, const std::string& original,
          const std::string& path, size_t offset, const char* rule,
          std::string message) {
  int line = scan::LineOfOffset(original, offset);
  if (scan::Suppressed(original, line, rule)) return;
  findings.push_back(Finding{path, line, rule, std::move(message)});
}

void CheckBannedTokens(const std::string& path, const std::string& original,
                       const std::string& stripped,
                       std::vector<Finding>& findings, bool unordered) {
  if (!RngExempt(path)) {
    for (const BannedToken& banned : kRngTokens) {
      std::string token = banned.token;
      for (size_t pos = stripped.find(token); pos != std::string::npos;
           pos = stripped.find(token, pos + 1)) {
        if (!TokenAt(stripped, pos, token)) continue;
        if (banned.call_only) {
          size_t after = SkipSpaces(stripped, pos + token.size());
          if (after >= stripped.size() || stripped[after] != '(') continue;
        }
        Emit(findings, original, path, pos, "banned-rng", banned.message);
      }
    }
  }
  if (unordered && UnorderedScoped(path)) {
    for (const char* token : {"unordered_map", "unordered_set"}) {
      for (size_t pos = stripped.find(token); pos != std::string::npos;
           pos = stripped.find(token, pos + 1)) {
        if (!TokenAt(stripped, pos, token)) continue;
        Emit(findings, original, path, pos, "unordered-container",
             StrFormat("std::%s in a deterministic path: iteration order "
                       "is implementation-defined; use std::map / sorted "
                       "vectors",
                       token));
      }
    }
  }
}

void CheckNakedNew(const std::string& path, const std::string& original,
                   const std::string& stripped,
                   std::vector<Finding>& findings) {
  for (size_t pos = stripped.find("new"); pos != std::string::npos;
       pos = stripped.find("new", pos + 1)) {
    if (!TokenAt(stripped, pos, "new")) continue;
    Emit(findings, original, path, pos, "naked-new",
         "naked new: allocate via make_unique/make_shared or a container");
  }
  for (size_t pos = stripped.find("delete"); pos != std::string::npos;
       pos = stripped.find("delete", pos + 1)) {
    if (!TokenAt(stripped, pos, "delete")) continue;
    // `Foo(const Foo&) = delete;` declares a deleted function — fine.
    if (PrevNonSpace(stripped, pos) == '=') continue;
    Emit(findings, original, path, pos, "naked-new",
         "naked delete: ownership belongs in a smart pointer or container");
  }
}

void CheckMutexAnnotations(const std::string& path,
                           const std::string& original,
                           const std::string& stripped,
                           std::vector<Finding>& findings) {
  size_t pos = stripped.find("std::mutex");
  while (pos != std::string::npos && !TokenAt(stripped, pos, "std::mutex")) {
    pos = stripped.find("std::mutex", pos + 1);
  }
  if (pos == std::string::npos) return;
  // Look for the include directive itself (not a mention in a comment).
  if (original.find("#include \"common/thread_annotations.h\"") !=
      std::string::npos) {
    return;
  }
  Emit(findings, original, path, pos, "mutex-annotations",
       "std::mutex without #include \"common/thread_annotations.h\": "
       "annotate the guarded members (GUARDED_BY) so clang -Wthread-safety "
       "can check the lock discipline");
}

void CheckVoidCasts(const std::string& path, const std::string& original,
                    const std::string& stripped,
                    std::vector<Finding>& findings) {
  for (size_t pos = stripped.find("(void)"); pos != std::string::npos;
       pos = stripped.find("(void)", pos + 1)) {
    size_t p = SkipSpaces(stripped, pos + 6);
    // A discarded *call*: identifier chars (possibly qualified / chained
    // with :: . -> and intermediate calls) ending in '('. A bare
    // `(void)param;` unused-parameter cast has no '(' and is fine.
    size_t q = p;
    bool saw_call = false;
    while (q < stripped.size()) {
      char c = stripped[q];
      if (IsWordChar(c) || c == ':' || c == '.' || c == ' ') {
        ++q;
      } else if (c == '-' && q + 1 < stripped.size() &&
                 stripped[q + 1] == '>') {
        q += 2;
      } else if (c == '(') {
        saw_call = q > p;
        break;
      } else {
        break;
      }
    }
    if (!saw_call) continue;
    int line = scan::LineOfOffset(original, pos);
    if (scan::LineText(original, line).find("//") != std::string::npos) {
      continue;
    }
    Emit(findings, original, path, pos, "void-cast-needs-comment",
         "discarded call cast to (void) without a same-line // comment "
         "justifying the dropped Status/Result");
  }
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  return scan::StripCommentsAndStrings(source);
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source, Profile profile) {
  std::string stripped = scan::StripCommentsAndStrings(source);
  std::vector<Finding> findings;
  CheckBannedTokens(path, source, stripped, findings,
                    /*unordered=*/profile == Profile::kStrict);
  CheckMutexAnnotations(path, source, stripped, findings);
  if (profile == Profile::kStrict) {
    CheckNakedNew(path, source, stripped, findings);
    CheckVoidCasts(path, source, stripped, findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

Result<std::vector<Finding>> LintTree(const std::string& root,
                                      Profile profile) {
  // Fixture trees are deliberately rule-breaking *test data*
  // (tests/tools/lint_fixtures/ for the linter, analyze_fixtures/ for the
  // architecture analyzer); they are walked by their own tests with their
  // own root, never as part of a real source tree.
  Result<std::vector<scan::SourceFile>> tree =
      scan::LoadTree(root, {"lint_fixtures", "analyze_fixtures"});
  if (!tree.ok()) return tree.status();
  std::vector<Finding> findings;
  for (const scan::SourceFile& file : *tree) {
    std::vector<Finding> file_findings =
        LintFile(file.path, file.contents, profile);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace eos::lint
