#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lint.h"

/// \file
/// CLI for the determinism linter: `eos_lint [--relaxed] <root> [<root>...]`
/// lints every *.h / *.cc / *.cpp under each root and prints findings as
/// `path:line: [rule] message`. Exit 0 = clean, 1 = findings, 2 = I/O or
/// usage error. `--relaxed` applies the test/bench profile (reproducibility
/// rules only — see lint.h); the default is the strict production profile.
/// Registered as the `lint`-labeled ctests (lint_src strict over src/,
/// lint_tests / lint_bench relaxed) so `ctest -L lint` gates the tree.

int main(int argc, char** argv) {
  eos::lint::Profile profile = eos::lint::Profile::kStrict;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relaxed") == 0) {
      profile = eos::lint::Profile::kRelaxed;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    } else {
      roots.push_back(argv[i]);
    }
  }
  if (roots.empty()) {
    std::fprintf(stderr, "usage: %s [--relaxed] <source-root> [<root>...]\n",
                 argv[0]);
    return 2;
  }
  int64_t total = 0;
  for (const std::string& root : roots) {
    eos::Result<std::vector<eos::lint::Finding>> findings =
        eos::lint::LintTree(root, profile);
    if (!findings.ok()) {
      std::fprintf(stderr, "%s\n", findings.status().ToString().c_str());
      return 2;
    }
    for (const eos::lint::Finding& finding : *findings) {
      std::printf("%s\n", eos::lint::FormatFinding(finding).c_str());
    }
    total += static_cast<int64_t>(findings->size());
  }
  if (total > 0) {
    std::fprintf(stderr, "%lld lint finding(s)\n",
                 static_cast<long long>(total));
    return 1;
  }
  return 0;
}
