#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

/// \file
/// CLI for the determinism linter: `eos_lint <root> [<root>...]` lints every
/// *.h / *.cc / *.cpp under each root and prints findings as
/// `path:line: [rule] message`. Exit 0 = clean, 1 = findings, 2 = I/O error.
/// Registered as the `lint`-labeled ctest so `ctest -L lint` gates the tree.

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <source-root> [<source-root>...]\n",
                 argv[0]);
    return 2;
  }
  int64_t total = 0;
  for (int i = 1; i < argc; ++i) {
    eos::Result<std::vector<eos::lint::Finding>> findings =
        eos::lint::LintTree(argv[i]);
    if (!findings.ok()) {
      std::fprintf(stderr, "%s\n", findings.status().ToString().c_str());
      return 2;
    }
    for (const eos::lint::Finding& finding : *findings) {
      std::printf("%s\n", eos::lint::FormatFinding(finding).c_str());
    }
    total += static_cast<int64_t>(findings->size());
  }
  if (total > 0) {
    std::fprintf(stderr, "%lld lint finding(s)\n",
                 static_cast<long long>(total));
    return 1;
  }
  return 0;
}
