#ifndef EOS_TOOLS_LINT_LINT_H_
#define EOS_TOOLS_LINT_LINT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scan.h"

/// \file
/// The in-repo determinism linter: a token-level checker for project
/// invariants that neither the compiler nor the sanitizers can see. It
/// walks a source tree and enforces:
///
///   banned-rng              no rand()/srand()/drand48()/srand48()/
///                           std::random_device/raw std::mt19937 engines/
///                           time()/system_clock outside serve/ and
///                           common/stopwatch.h — every other path must draw
///                           randomness from eos::Rng (seeded, reproducible)
///                           and time from eos::Stopwatch, or runs stop
///                           being bitwise-reproducible.
///   unordered-container     no std::unordered_{map,set} in sampling/,
///                           core/, metrics/ — iteration order is
///                           implementation-defined, so any loop over one
///                           can silently change results between stdlibs.
///   naked-new               no naked new/delete; use containers and
///                           make_unique/make_shared (deleted special
///                           members, `= delete`, are fine).
///   mutex-annotations       any file that mentions std::mutex must include
///                           common/thread_annotations.h, so its guarded
///                           state is annotated for clang -Wthread-safety.
///   void-cast-needs-comment a discarded call spelled `(void)Foo(...)` must
///                           carry a same-line // comment justifying the
///                           drop (the [[nodiscard]] escape hatch is never
///                           silent).
///
/// Profiles: production code (src/) lints with Profile::kStrict — every
/// rule. Test and benchmark trees lint with Profile::kRelaxed, which keeps
/// the reproducibility-critical rules (banned-rng, mutex-annotations) but
/// drops the style-tier ones (naked-new, unordered-container,
/// void-cast-needs-comment): a test may reasonably juggle raw pointers or
/// hash containers, but nondeterministic RNG in a test makes its failures
/// unreproducible, which is exactly when determinism matters most.
///
/// Suppression: a finding on line N is suppressed when line N or N-1
/// contains `lint:allow(<rule>)` in a comment, e.g.
///   // lint:allow(naked-new) intentionally leaked singleton
///
/// Matching happens on a comment- and string-stripped copy of each file, so
/// tokens inside comments, string literals, and raw strings never trip a
/// rule; suppressions and justification comments are read from the
/// original text. The stripping/token/suppression substrate lives in the
/// shared scanning core (tools/scan) also used by the architecture analyzer
/// (tools/analyze). See DESIGN.md "Static analysis" for how to add a rule.

namespace eos::lint {

/// Which rule set to apply. kStrict = all rules (production src/);
/// kRelaxed = reproducibility rules only (tests/, bench/).
enum class Profile {
  kStrict,
  kRelaxed,
};

/// One rule violation at a source location (the shared scan-core type, so
/// lint and analyze findings carry the same shape and print identically).
using Finding = scan::Finding;

/// "path:line: [rule] message" — the one true output format (tested).
/// The shared scan-core formatter, re-exported under the lint namespace.
using scan::FormatFinding;

/// Replaces the bodies of //, /* */ comments, "..." / '...' literals, and
/// R"delim(...)delim" raw strings with spaces, preserving every newline so
/// byte offsets map to unchanged line numbers. Exposed for tests; delegates
/// to the shared scan core.
std::string StripCommentsAndStrings(const std::string& source);

/// Runs the profile's rules over one file's contents. `path` should be
/// relative to the linted root — path-scoped rules (banned-rng exemptions,
/// the unordered-container deterministic-path list) match on it textually.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& source,
                              Profile profile = Profile::kStrict);

/// Walks `root` recursively, linting every *.h / *.cc / *.cpp file in
/// deterministic (sorted) order. Paths in the findings are relative to
/// `root`. Fails with NotFound / IoError when the tree cannot be read.
Result<std::vector<Finding>> LintTree(const std::string& root,
                                      Profile profile = Profile::kStrict);

}  // namespace eos::lint

#endif  // EOS_TOOLS_LINT_LINT_H_
