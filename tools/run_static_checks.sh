#!/usr/bin/env bash
# Static-analysis driver: runs everything that can be checked without
# executing the code. Intended both for CI and as the pre-commit gate:
#
#   tools/run_static_checks.sh [build-dir]
#
# 1. the in-repo determinism linter (tools/lint) over src/   [always]
# 2. clang-tidy over src/ using the build's compile_commands  [if installed]
# 3. a clang -Wthread-safety -Werror compile of the tree      [if installed]
# 4. the SIMD scalar/AVX2 equivalence tier (ctest -L simd)    [if built]
# 5. the indexed-KNN equivalence tier (ctest -L knn)          [if built]
# 6. the fleet serving acceptance tier (ctest -L fleet)       [if built]
# 7. the fleet chaos drill tier (ctest -L chaos), in the      [if built]
#    default build plus build-tsan / build-asan when present
#
# Steps whose toolchain is missing are SKIPPED with a notice, not failed:
# the GCC-only container still gets the lint gate, while a developer
# machine with LLVM gets all three. Exit is nonzero iff an executed step
# finds a problem.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
failures=0

step() { printf '\n=== %s ===\n' "$*"; }

# Echoes the first available spelling of an LLVM tool: bare name first, then
# distro-versioned fallbacks (clang-tidy-20 ... clang-tidy-14), newest first.
# Distros that ship only versioned binaries otherwise read as "not
# installed" and silently skip two steps.
find_llvm_tool() {
  local base="$1"
  if command -v "$base" > /dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local v
  for v in 20 19 18 17 16 15 14; do
    if command -v "$base-$v" > /dev/null 2>&1; then
      echo "$base-$v"
      return 0
    fi
  done
  return 1
}

# --- 1. determinism linter -------------------------------------------------
step "tools/lint over src/"
if [[ ! -x "$build_dir/tools/lint/eos_lint" ]]; then
  echo "eos_lint not built; building it in $build_dir"
  cmake -B "$build_dir" -S "$repo_root" > /dev/null &&
    cmake --build "$build_dir" --target eos_lint -j > /dev/null ||
    { echo "FAIL: could not build eos_lint"; exit 1; }
fi
if "$build_dir/tools/lint/eos_lint" "$repo_root/src"; then
  echo "lint: clean"
else
  echo "FAIL: lint findings above"
  failures=$((failures + 1))
fi

# --- 2. clang-tidy ---------------------------------------------------------
step "clang-tidy (bugprone, performance, concurrency)"
if clang_tidy="$(find_llvm_tool clang-tidy)"; then
  echo "using $clang_tidy ($("$clang_tidy" --version | head -n 1))"
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  # shellcheck disable=SC2046  # word-splitting the file list is the point
  if "$clang_tidy" -p "$build_dir" --quiet \
      $(find "$repo_root/src" -name '*.cc' | sort); then
    echo "clang-tidy: clean"
  else
    echo "FAIL: clang-tidy findings above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: clang-tidy not installed (bare or versioned)"
fi

# --- 3. clang thread-safety analysis --------------------------------------
step "clang -Wthread-safety -Werror build"
if clangxx="$(find_llvm_tool clang++)"; then
  clangcc="${clangxx/clang++/clang}"
  command -v "$clangcc" > /dev/null 2>&1 || clangcc="$clangxx"
  echo "using $clangxx ($("$clangxx" --version | head -n 1))"
  tsa_dir="$build_dir-tsa"
  # A cache configured for a different compiler (e.g. an earlier GCC run of
  # this script, or a clang upgrade) would silently win over environment
  # variables on reconfigure — CMake ignores CC/CXX once a cache exists. So
  # the compiler is pinned with explicit -DCMAKE_*_COMPILER flags, and a
  # cache that disagrees with them is wiped rather than trusted.
  if [[ -f "$tsa_dir/CMakeCache.txt" ]] &&
      ! grep -q "CMAKE_CXX_COMPILER:.*$(command -v "$clangxx")" \
          "$tsa_dir/CMakeCache.txt" 2> /dev/null; then
    echo "stale cache in $tsa_dir (different compiler); reconfiguring fresh"
    rm -rf "$tsa_dir"
  fi
  if cmake -B "$tsa_dir" -S "$repo_root" \
        -DCMAKE_C_COMPILER="$(command -v "$clangcc")" \
        -DCMAKE_CXX_COMPILER="$(command -v "$clangxx")" \
        -DEOS_ENABLE_THREAD_SAFETY_ANALYSIS=ON -DEOS_WERROR=ON > /dev/null &&
      cmake --build "$tsa_dir" -j > /dev/null; then
    echo "thread-safety analysis: clean"
  else
    echo "FAIL: -Wthread-safety diagnostics above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: clang++ not installed, bare or versioned (annotations are" \
       "no-ops under GCC)"
fi

# --- 4. SIMD dispatch equivalence tier -------------------------------------
# Not strictly static, but it is the gate on the dispatch layer's central
# claim (per-ISA-path determinism and scalar/AVX2 agreement), and each suite
# runs again under both EOS_SIMD overrides — cheap enough to sit with the
# other pre-commit checks.
step "SIMD kernel equivalence (ctest -L simd)"
if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
  if (cd "$build_dir" && ctest -L simd --output-on-failure); then
    echo "simd tier: clean"
  else
    echo "FAIL: simd equivalence failures above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: $build_dir has no ctest config (build the tree first)"
fi

# --- 5. indexed-KNN equivalence tier ---------------------------------------
# Same rationale as the simd tier: the KD-tree backend's central claim is
# bitwise equality with brute force across every KNN-consuming sampler, and
# the `knn` label re-runs the property suites under EOS_KNN overrides.
step "indexed-KNN equivalence (ctest -L knn)"
if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
  if (cd "$build_dir" && ctest -L knn --output-on-failure); then
    echo "knn tier: clean"
  else
    echo "FAIL: knn equivalence failures above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: $build_dir has no ctest config (build the tree first)"
fi

# --- 6. fleet serving acceptance tier ---------------------------------------
# The sharded-serving gate: hash-ring routing properties, bitwise swap
# equivalence across a live cutover, the fault drills (replica down during
# the roll, load failure -> automatic rollback), and the telemetry goldens.
# The same label should also be run under both sanitizer builds:
#   ctest --test-dir build-tsan -L fleet
#   ctest --test-dir build-asan -L fleet
step "fleet serving acceptance (ctest -L fleet)"
if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
  if (cd "$build_dir" && ctest -L fleet --output-on-failure); then
    echo "fleet tier: clean"
  else
    echo "FAIL: fleet tier failures above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: $build_dir has no ctest config (build the tree first)"
fi

# --- 7. fleet chaos drill tier ----------------------------------------------
# The scripted kill/stall/bad-deploy drill (bench/fleet_chaos) under
# closed-loop load: supervisor recovery witnessed, bad canaries auto-abort,
# a healthy one promotes, zero failed client requests, bitwise per-version
# serving. Runs in the default build and again in each sanitizer build that
# exists next to it — the drill is exactly the concurrency soup TSan and
# ASan are for.
step "fleet chaos drills (ctest -L chaos)"
chaos_ran=0
for chaos_dir in "$build_dir" "$build_dir-tsan" "$build_dir-asan" \
    "${build_dir%/build}/build-tsan" "${build_dir%/build}/build-asan"; do
  [[ -f "$chaos_dir/CTestTestfile.cmake" ]] || continue
  # The two spellings above can alias each other; run each real dir once.
  case " ${chaos_seen:-} " in *" $chaos_dir "*) continue ;; esac
  chaos_seen="${chaos_seen:-} $chaos_dir"
  chaos_ran=1
  echo "--- chaos tier in $chaos_dir"
  if (cd "$chaos_dir" && ctest -L chaos --output-on-failure); then
    echo "chaos tier ($chaos_dir): clean"
  else
    echo "FAIL: chaos drill failures above ($chaos_dir)"
    failures=$((failures + 1))
  fi
done
if [[ "$chaos_ran" -eq 0 ]]; then
  echo "SKIPPED: no built tree with a ctest config found"
fi

step "summary"
if [[ "$failures" -eq 0 ]]; then
  echo "all executed static checks passed"
else
  echo "$failures static check(s) failed"
fi
exit "$((failures > 0 ? 1 : 0))"
