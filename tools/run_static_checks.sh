#!/usr/bin/env bash
# Static-analysis driver: runs everything that can be checked without
# executing the code. Intended both for CI and as the pre-commit gate:
#
#   tools/run_static_checks.sh [--summary out.json] [build-dir]
#
# 1. the in-repo determinism linter (tools/lint) over src/    [always]
# 2. the architecture analyzer (tools/analyze) over src/:     [always]
#    layering DAG, include cycles, IWYU-lite, lock registry
# 3. the analyzer + lock-order detector tier (ctest -L        [if built]
#    analyze): fixture exactness, DebugMutex inversion death
#    tests, and the fleet suites re-run with the runtime
#    deadlock detector armed (EOS_DEADLOCK_DETECT=1)
# 4. clang-tidy over src/ using the build's compile_commands  [if installed]
# 5. a clang -Wthread-safety -Werror compile of the tree      [if installed]
# 6. the SIMD scalar/AVX2 equivalence tier (ctest -L simd)    [if built]
# 7. the indexed-KNN equivalence tier (ctest -L knn)          [if built]
# 8. the fleet serving acceptance tier (ctest -L fleet)       [if built]
# 9. the fleet chaos drill tier (ctest -L chaos), in the      [if built]
#    default build plus build-tsan / build-asan when present
#
# Steps whose toolchain is missing are SKIPPED with a notice, not failed:
# the GCC-only container still gets the lint/analyze gates, while a
# developer machine with LLVM gets the clang steps too — and once a clang
# toolchain IS found, any problem in its steps (including a failed
# configure) is a FAILURE, never a silent skip. Exit is nonzero iff an
# executed step finds a problem.
#
# --summary out.json writes a machine-readable run record: one entry per
# step with name, status (pass|fail|skip), and wall-clock duration in
# seconds — for CI dashboards and for diffing which steps a container
# actually executed.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
summary_file=""
if [[ "${1:-}" == "--summary" ]]; then
  [[ $# -ge 2 ]] || { echo "--summary needs a file argument" >&2; exit 2; }
  summary_file="$2"
  shift 2
fi
build_dir="${1:-$repo_root/build}"
failures=0

step_names=()
step_statuses=()
step_durations=()
current_step=""
step_start=0

step() {
  current_step="$1"
  step_start="$(date +%s)"
  printf '\n=== %s ===\n' "$*"
}

# Closes the current step with pass|fail|skip; `fail` also counts toward the
# exit status.
finish() {
  local status="$1"
  step_names+=("$current_step")
  step_statuses+=("$status")
  step_durations+=("$(($(date +%s) - step_start))")
  [[ "$status" == fail ]] && failures=$((failures + 1))
}

write_summary() {
  [[ -n "$summary_file" ]] || return 0
  {
    echo '{'
    echo '  "steps": ['
    local i last=$((${#step_names[@]} - 1))
    for i in "${!step_names[@]}"; do
      printf '    {"name": "%s", "status": "%s", "duration_s": %s}%s\n' \
        "${step_names[$i]}" "${step_statuses[$i]}" "${step_durations[$i]}" \
        "$([[ "$i" -lt "$last" ]] && echo ',')"
    done
    echo '  ],'
    printf '  "failures": %d\n' "$failures"
    echo '}'
  } > "$summary_file"
  echo "summary written to $summary_file"
}

# Echoes the first available spelling of an LLVM tool: bare name first, then
# distro-versioned fallbacks (clang-tidy-20 ... clang-tidy-14), newest first.
# Distros that ship only versioned binaries otherwise read as "not
# installed" and silently skip two steps.
find_llvm_tool() {
  local base="$1"
  if command -v "$base" > /dev/null 2>&1; then
    echo "$base"
    return 0
  fi
  local v
  for v in 20 19 18 17 16 15 14; do
    if command -v "$base-$v" > /dev/null 2>&1; then
      echo "$base-$v"
      return 0
    fi
  done
  return 1
}

# Builds one tool target on demand (lint and analyze share this path so a
# fresh checkout can run the script before ever invoking cmake by hand).
ensure_tool() {
  local target="$1" binary="$2"
  [[ -x "$binary" ]] && return 0
  echo "$target not built; building it in $build_dir"
  cmake -B "$build_dir" -S "$repo_root" > /dev/null &&
    cmake --build "$build_dir" --target "$target" -j > /dev/null
}

# Runs one ctest label tier as a recorded step.
ctest_tier() {
  local label="$1" pretty="$2"
  step "$pretty (ctest -L $label)"
  current_step="ctest-$label"  # short machine name in the --summary record
  if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
    if (cd "$build_dir" && ctest -L "$label" --output-on-failure); then
      echo "$label tier: clean"
      finish pass
    else
      echo "FAIL: $label tier failures above"
      finish fail
    fi
  else
    echo "SKIPPED: $build_dir has no ctest config (build the tree first)"
    finish skip
  fi
}

# --- 1. determinism linter -------------------------------------------------
step "lint"
if ! ensure_tool eos_lint "$build_dir/tools/lint/eos_lint"; then
  echo "FAIL: could not build eos_lint"
  finish fail
  write_summary
  exit 1
fi
if "$build_dir/tools/lint/eos_lint" "$repo_root/src"; then
  echo "lint: clean"
  finish pass
else
  echo "FAIL: lint findings above"
  finish fail
fi

# --- 2. architecture analyzer ----------------------------------------------
# Layering-DAG enforcement, include-cycle detection, the IWYU-lite
# unused-include pass, and the lock-annotation registry (tools/analyze).
step "analyze"
if ! ensure_tool eos_analyze "$build_dir/tools/analyze/eos_analyze"; then
  echo "FAIL: could not build eos_analyze"
  finish fail
  write_summary
  exit 1
fi
if "$build_dir/tools/analyze/eos_analyze" "$repo_root/src"; then
  echo "analyze: clean"
  finish pass
else
  echo "FAIL: analyzer findings above"
  finish fail
fi

# --- 3. analyzer + lock-order detector tier ---------------------------------
# Fixture exactness for every analyzer pass, the DebugMutex ABBA death
# tests, and the lock-heavy serving suites re-run with the runtime
# lock-order detector armed via EOS_DEADLOCK_DETECT=1 (common/lock_order.h).
ctest_tier analyze "analyzer & deadlock detector"

# --- 4. clang-tidy ---------------------------------------------------------
step "clang-tidy"
if clang_tidy="$(find_llvm_tool clang-tidy)"; then
  echo "using $clang_tidy ($("$clang_tidy" --version | head -n 1))"
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  # shellcheck disable=SC2046  # word-splitting the file list is the point
  if "$clang_tidy" -p "$build_dir" --quiet \
      $(find "$repo_root/src" -name '*.cc' | sort); then
    echo "clang-tidy: clean"
    finish pass
  else
    echo "FAIL: clang-tidy findings above"
    finish fail
  fi
else
  echo "SKIPPED: clang-tidy not installed (bare or versioned)"
  finish skip
fi

# --- 5. clang thread-safety analysis --------------------------------------
step "thread-safety"
if clangxx="$(find_llvm_tool clang++)"; then
  clangcc="${clangxx/clang++/clang}"
  command -v "$clangcc" > /dev/null 2>&1 || clangcc="$clangxx"
  echo "using $clangxx ($("$clangxx" --version | head -n 1))"
  tsa_dir="$build_dir-tsa"
  # A cache configured for a different compiler (e.g. an earlier GCC run of
  # this script, or a clang upgrade) would silently win over environment
  # variables on reconfigure — CMake ignores CC/CXX once a cache exists. So
  # the compiler is pinned with explicit -DCMAKE_*_COMPILER flags, and a
  # cache that disagrees with them is wiped rather than trusted.
  if [[ -f "$tsa_dir/CMakeCache.txt" ]] &&
      ! grep -q "CMAKE_CXX_COMPILER:.*$(command -v "$clangxx")" \
          "$tsa_dir/CMakeCache.txt" 2> /dev/null; then
    echo "stale cache in $tsa_dir (different compiler); reconfiguring fresh"
    rm -rf "$tsa_dir"
  fi
  # With a clang toolchain present this step may only pass or FAIL — a
  # broken configure is a failure too, never a skip: annotations that stop
  # compiling must not rot silently on LLVM machines.
  if cmake -B "$tsa_dir" -S "$repo_root" \
        -DCMAKE_C_COMPILER="$(command -v "$clangcc")" \
        -DCMAKE_CXX_COMPILER="$(command -v "$clangxx")" \
        -DEOS_ENABLE_THREAD_SAFETY_ANALYSIS=ON -DEOS_WERROR=ON > /dev/null &&
      cmake --build "$tsa_dir" -j > /dev/null; then
    echo "thread-safety analysis: clean"
    finish pass
  else
    echo "FAIL: -Wthread-safety diagnostics (or TSA configure/build) above"
    finish fail
  fi
else
  echo "SKIPPED: clang++ not installed, bare or versioned (annotations are" \
       "no-ops under GCC)"
  finish skip
fi

# --- 6. SIMD dispatch equivalence tier -------------------------------------
# Not strictly static, but it is the gate on the dispatch layer's central
# claim (per-ISA-path determinism and scalar/AVX2 agreement), and each suite
# runs again under both EOS_SIMD overrides — cheap enough to sit with the
# other pre-commit checks.
ctest_tier simd "SIMD kernel equivalence"

# --- 7. indexed-KNN equivalence tier ---------------------------------------
# Same rationale as the simd tier: the KD-tree backend's central claim is
# bitwise equality with brute force across every KNN-consuming sampler, and
# the `knn` label re-runs the property suites under EOS_KNN overrides.
ctest_tier knn "indexed-KNN equivalence"

# --- 8. fleet serving acceptance tier ---------------------------------------
# The sharded-serving gate: hash-ring routing properties, bitwise swap
# equivalence across a live cutover, the fault drills (replica down during
# the roll, load failure -> automatic rollback), and the telemetry goldens.
# The same label should also be run under both sanitizer builds:
#   ctest --test-dir build-tsan -L fleet
#   ctest --test-dir build-asan -L fleet
ctest_tier fleet "fleet serving acceptance"

# --- 9. fleet chaos drill tier ----------------------------------------------
# The scripted kill/stall/bad-deploy drill (bench/fleet_chaos) under
# closed-loop load: supervisor recovery witnessed, bad canaries auto-abort,
# a healthy one promotes, zero failed client requests, bitwise per-version
# serving. Runs in the default build and again in each sanitizer build that
# exists next to it — the drill is exactly the concurrency soup TSan and
# ASan are for.
step "chaos"
chaos_ran=0
chaos_failed=0
for chaos_dir in "$build_dir" "$build_dir-tsan" "$build_dir-asan" \
    "${build_dir%/build}/build-tsan" "${build_dir%/build}/build-asan"; do
  [[ -f "$chaos_dir/CTestTestfile.cmake" ]] || continue
  # The two spellings above can alias each other; run each real dir once.
  case " ${chaos_seen:-} " in *" $chaos_dir "*) continue ;; esac
  chaos_seen="${chaos_seen:-} $chaos_dir"
  chaos_ran=1
  echo "--- chaos tier in $chaos_dir"
  if (cd "$chaos_dir" && ctest -L chaos --output-on-failure); then
    echo "chaos tier ($chaos_dir): clean"
  else
    echo "FAIL: chaos drill failures above ($chaos_dir)"
    chaos_failed=1
  fi
done
if [[ "$chaos_ran" -eq 0 ]]; then
  echo "SKIPPED: no built tree with a ctest config found"
  finish skip
elif [[ "$chaos_failed" -eq 0 ]]; then
  finish pass
else
  finish fail
fi

step "summary"
if [[ "$failures" -eq 0 ]]; then
  echo "all executed static checks passed"
else
  echo "$failures static check(s) failed"
fi
current_step=""  # the summary itself is not a recorded step
write_summary
exit "$((failures > 0 ? 1 : 0))"
