#!/usr/bin/env bash
# Static-analysis driver: runs everything that can be checked without
# executing the code. Intended both for CI and as the pre-commit gate:
#
#   tools/run_static_checks.sh [build-dir]
#
# 1. the in-repo determinism linter (tools/lint) over src/   [always]
# 2. clang-tidy over src/ using the build's compile_commands  [if installed]
# 3. a clang -Wthread-safety -Werror compile of the tree      [if installed]
# 4. the SIMD scalar/AVX2 equivalence tier (ctest -L simd)    [if built]
#
# Steps whose toolchain is missing are SKIPPED with a notice, not failed:
# the GCC-only container still gets the lint gate, while a developer
# machine with LLVM gets all three. Exit is nonzero iff an executed step
# finds a problem.
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
failures=0

step() { printf '\n=== %s ===\n' "$*"; }

# --- 1. determinism linter -------------------------------------------------
step "tools/lint over src/"
if [[ ! -x "$build_dir/tools/lint/eos_lint" ]]; then
  echo "eos_lint not built; building it in $build_dir"
  cmake -B "$build_dir" -S "$repo_root" > /dev/null &&
    cmake --build "$build_dir" --target eos_lint -j > /dev/null ||
    { echo "FAIL: could not build eos_lint"; exit 1; }
fi
if "$build_dir/tools/lint/eos_lint" "$repo_root/src"; then
  echo "lint: clean"
else
  echo "FAIL: lint findings above"
  failures=$((failures + 1))
fi

# --- 2. clang-tidy ---------------------------------------------------------
step "clang-tidy (bugprone, performance, concurrency)"
if command -v clang-tidy > /dev/null 2>&1; then
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    cmake -B "$build_dir" -S "$repo_root" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  fi
  # shellcheck disable=SC2046  # word-splitting the file list is the point
  if clang-tidy -p "$build_dir" --quiet \
      $(find "$repo_root/src" -name '*.cc' | sort); then
    echo "clang-tidy: clean"
  else
    echo "FAIL: clang-tidy findings above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: clang-tidy not installed"
fi

# --- 3. clang thread-safety analysis --------------------------------------
step "clang -Wthread-safety -Werror build"
if command -v clang++ > /dev/null 2>&1; then
  tsa_dir="$build_dir-tsa"
  if CC=clang CXX=clang++ cmake -B "$tsa_dir" -S "$repo_root" \
        -DEOS_ENABLE_THREAD_SAFETY_ANALYSIS=ON -DEOS_WERROR=ON > /dev/null &&
      cmake --build "$tsa_dir" -j > /dev/null; then
    echo "thread-safety analysis: clean"
  else
    echo "FAIL: -Wthread-safety diagnostics above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: clang++ not installed (annotations are no-ops under GCC)"
fi

# --- 4. SIMD dispatch equivalence tier -------------------------------------
# Not strictly static, but it is the gate on the dispatch layer's central
# claim (per-ISA-path determinism and scalar/AVX2 agreement), and each suite
# runs again under both EOS_SIMD overrides — cheap enough to sit with the
# other pre-commit checks.
step "SIMD kernel equivalence (ctest -L simd)"
if [[ -f "$build_dir/CTestTestfile.cmake" ]]; then
  if (cd "$build_dir" && ctest -L simd --output-on-failure); then
    echo "simd tier: clean"
  else
    echo "FAIL: simd equivalence failures above"
    failures=$((failures + 1))
  fi
else
  echo "SKIPPED: $build_dir has no ctest config (build the tree first)"
fi

step "summary"
if [[ "$failures" -eq 0 ]]; then
  echo "all executed static checks passed"
else
  echo "$failures static check(s) failed"
fi
exit "$((failures > 0 ? 1 : 0))"
