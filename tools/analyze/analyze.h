#ifndef EOS_TOOLS_ANALYZE_ANALYZE_H_
#define EOS_TOOLS_ANALYZE_ANALYZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scan.h"

/// \file
/// The architecture analyzer: whole-tree structural checks that the
/// compiler cannot express and the linter's single-file rules cannot see.
/// Built on the shared token-level scanning core (tools/scan), it parses
/// every #include under a root and enforces:
///
///   layering        the module DAG. A module (first path segment under the
///                   root: common/, tensor/, serve/, ...) may only include
///                   headers from strictly lower-ranked modules or itself.
///                   DefaultLayers() declares the repo's DAG; ranks make the
///                   allowed direction total and cycle-free by construction.
///   include-cycle   no cyclic #include chains among the tree's headers
///                   (caught even within one module, where layering is
///                   silent).
///   unused-include  IWYU-lite. An include is flagged when nothing the
///                   included header exports is referenced by the includer.
///                   "Exports" is approximated as every CamelCase or
///                   kConstant identifier in the header (EOS house style
///                   makes public names CamelCase, so over-collection only
///                   ever errs toward keeping an include). System headers
///                   are judged by a curated header -> token table and
///                   skipped when unknown. A .cc's primary header is always
///                   kept; `lint:allow(unused-include)` suppresses.
///   unannotated-mutex  every declared std::mutex / eos::DebugMutex member
///                   must be referenced by at least one thread-safety
///                   annotation (GUARDED_BY / REQUIRES / ...) in the same
///                   file — the static half of the lock discipline; the
///                   runtime half is the lock-order detector
///                   (src/common/lock_order.h).
///
/// The same scan also inventories every annotated lock into a registry
/// (locks + their annotation reference counts) and can emit the module
/// graph as DOT / the whole analysis as JSON for docs and dashboards.
/// Findings share the linter's `path:line: [rule] message` format and its
/// suppression grammar. See DESIGN.md "Architecture & lock-order analysis".

namespace eos::analyze {

using scan::Finding;

/// One declared layer: a module name and its rank (0 = bottom). An include
/// from module A into module B is legal iff A == B or rank(B) < rank(A).
struct Layer {
  std::string module;
  int rank = 0;
};

/// The repo's declared layer DAG for src/ (see DESIGN.md for the diagram).
std::vector<Layer> DefaultLayers();

/// One parsed #include directive.
struct IncludeEdge {
  std::string from;  // includer, relative to the scanned root
  int line = 0;      // 1-based line of the directive
  std::string to;    // include target as written ("common/rng.h", "vector")
  bool system = false;  // <...> include
};

/// A loaded tree plus its parsed include edges.
struct TreeGraph {
  std::vector<scan::SourceFile> files;
  std::vector<IncludeEdge> edges;
};

/// Loads every *.h/*.cc/*.cpp under `root` (skipping fixture directories,
/// like the linter) and parses all #include directives.
Result<TreeGraph> ScanTree(const std::string& root);

/// Module of a tree-relative path: its first directory segment, or "" for a
/// top-level file.
std::string ModuleOf(const std::string& path);

/// Layering pass: every cross-module project include must point strictly
/// down the declared DAG; modules missing from `layers` are reported once
/// per offending edge.
std::vector<Finding> CheckLayering(const TreeGraph& graph,
                                   const std::vector<Layer>& layers);

/// Cycle pass: DFS over the tree's header-to-header include graph; each
/// distinct cycle is reported once, anchored at the directive that closes
/// it.
std::vector<Finding> CheckIncludeCycles(const TreeGraph& graph);

/// IWYU-lite pass (see file comment for the heuristic and its exemptions).
std::vector<Finding> CheckUnusedIncludes(const TreeGraph& graph);

/// One declared lock in the scanned tree.
struct LockSite {
  std::string path;
  int line = 0;
  std::string name;     // declared identifier, e.g. "mu_", "g_mu"
  std::string type;     // "std::mutex" or "DebugMutex"
  int annotation_refs = 0;  // same-file annotation arguments naming it
};

/// Inventories every std::mutex / DebugMutex declaration with the number of
/// thread-safety-annotation references to it in its file.
std::vector<LockSite> BuildLockRegistry(const TreeGraph& graph);

/// Lock pass: a declared mutex with zero same-file annotation references is
/// a finding (rule "unannotated-mutex").
std::vector<Finding> CheckLockAnnotations(const TreeGraph& graph);

/// Runs every pass over the tree in the order listed above and returns the
/// merged findings sorted by (path, line, rule).
std::vector<Finding> AnalyzeTree(const TreeGraph& graph,
                                 const std::vector<Layer>& layers);

/// The module-level include graph as Graphviz DOT (modules as nodes grouped
/// by rank, deduplicated cross-module edges).
std::string LayeringDot(const TreeGraph& graph,
                        const std::vector<Layer>& layers);

/// The whole analysis as JSON: declared layers, module edges with include
/// counts, and the lock registry.
std::string AnalysisJson(const TreeGraph& graph,
                         const std::vector<Layer>& layers);

}  // namespace eos::analyze

#endif  // EOS_TOOLS_ANALYZE_ANALYZE_H_
