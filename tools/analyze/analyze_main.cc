#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analyze.h"

/// \file
/// CLI driver for the architecture analyzer.
///
///   eos_analyze [--dot FILE] [--json FILE] <root>...
///
/// Runs every pass (layering, include cycles, unused includes, lock
/// annotations — see analyze.h) over each root and prints findings in the
/// shared `path:line: [rule] message` format. --dot / --json additionally
/// emit the first root's module graph / full analysis for docs and
/// dashboards. Exit codes match eos_lint: 0 clean, 1 findings, 2 usage or
/// I/O error.

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: eos_analyze [--dot FILE] [--json FILE] <root>...\n");
  return 2;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "eos_analyze: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dot_path;
  std::string json_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--dot" || arg == "--json") {
      if (i + 1 >= argc) return Usage();
      (arg == "--dot" ? dot_path : json_path) = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return Usage();

  const std::vector<eos::analyze::Layer> layers =
      eos::analyze::DefaultLayers();
  int total_findings = 0;
  bool first_root = true;
  for (const std::string& root : roots) {
    eos::Result<eos::analyze::TreeGraph> graph =
        eos::analyze::ScanTree(root);
    if (!graph.ok()) {
      std::fprintf(stderr, "eos_analyze: %s\n",
                   graph.status().ToString().c_str());
      return 2;
    }
    std::vector<eos::analyze::Finding> findings =
        eos::analyze::AnalyzeTree(*graph, layers);
    for (const eos::analyze::Finding& finding : findings) {
      std::printf("%s\n", eos::scan::FormatFinding(finding).c_str());
    }
    total_findings += static_cast<int>(findings.size());
    if (first_root) {
      first_root = false;
      if (!dot_path.empty() &&
          !WriteFile(dot_path,
                     eos::analyze::LayeringDot(*graph, layers))) {
        return 2;
      }
      if (!json_path.empty() &&
          !WriteFile(json_path,
                     eos::analyze::AnalysisJson(*graph, layers))) {
        return 2;
      }
    }
  }
  if (total_findings > 0) {
    std::fprintf(stderr, "eos_analyze: %d finding(s)\n", total_findings);
    return 1;
  }
  return 0;
}
