#include "analyze.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"

namespace eos::analyze {

namespace {

using scan::IsWordChar;
using scan::SkipSpaces;
using scan::SourceFile;
using scan::TokenAt;

/// Maximal identifier runs of `text`, as a set for O(log n) membership.
std::set<std::string> WordRuns(const std::string& text) {
  std::set<std::string> runs;
  size_t i = 0;
  while (i < text.size()) {
    if (!IsWordChar(text[i])) {
      ++i;
      continue;
    }
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    runs.insert(text.substr(start, i - start));
  }
  return runs;
}

/// Identifiers a project header is considered to "export": CamelCase types/
/// functions, kConstants, and ALL_CAPS macros. House style makes every
/// public name match, so over-collection only errs toward keeping includes.
std::set<std::string> ExportedNames(const std::string& header_contents) {
  std::set<std::string> exported;
  for (const std::string& run :
       WordRuns(scan::StripCommentsAndStrings(header_contents))) {
    char first = run[0];
    bool camel_or_macro = first >= 'A' && first <= 'Z';
    bool k_constant = first == 'k' && run.size() > 1 && run[1] >= 'A' &&
                      run[1] <= 'Z';
    if (camel_or_macro || k_constant) exported.insert(run);
  }
  return exported;
}

/// Curated system-header exports for the IWYU-lite pass. Headers not listed
/// here are never flagged (the pass cannot judge what it cannot model).
const std::map<std::string, std::vector<std::string>>& SystemExports() {
  static const auto* table = new std::map<std::string,
                                          std::vector<std::string>>{
      // lint:allow(naked-new) intentionally leaked function-local static
      {"algorithm",
       {"sort", "stable_sort", "min", "max", "minmax", "clamp", "find",
        "find_if", "count", "count_if", "fill", "copy", "copy_if",
        "transform", "lower_bound", "upper_bound", "unique", "remove",
        "remove_if", "shuffle", "nth_element", "partial_sort",
        "max_element", "min_element", "minmax_element", "all_of", "any_of",
        "none_of", "for_each", "adjacent_find", "merge",
        "reverse", "equal", "mismatch", "binary_search", "rotate",
        "partition", "generate", "swap"}},
      {"array", {"array"}},
      {"atomic",
       {"atomic", "atomic_flag", "atomic_thread_fence",
        "memory_order_relaxed", "memory_order_acquire",
        "memory_order_release", "memory_order_acq_rel",
        "memory_order_seq_cst"}},
      {"bitset", {"bitset"}},
      {"cassert", {"assert"}},
      {"cctype",
       {"isalnum", "isalpha", "isdigit", "isspace", "isupper", "islower",
        "tolower", "toupper", "ispunct", "isxdigit"}},
      {"cerrno", {"errno"}},
      {"cfloat", {"FLT_EPSILON", "DBL_EPSILON", "FLT_MAX", "DBL_MAX",
                  "FLT_MIN", "DBL_MIN"}},
      {"charconv", {"from_chars", "to_chars", "chars_format"}},
      {"chrono",
       {"chrono", "steady_clock", "duration", "duration_cast",
        "time_point", "milliseconds", "microseconds", "nanoseconds",
        "seconds", "minutes", "hours"}},
      {"climits",
       {"INT_MAX", "INT_MIN", "UINT_MAX", "LONG_MAX", "LONG_MIN",
        "LLONG_MAX", "CHAR_BIT", "SIZE_MAX"}},
      {"cmath",
       {"sqrt", "pow", "exp", "log", "log2", "log10", "sin", "cos", "tan",
        "tanh", "abs", "fabs", "floor", "ceil", "round", "lround", "fmod",
        "isnan", "isinf", "isfinite", "hypot", "erf", "lgamma", "expm1",
        "log1p", "cbrt", "copysign", "nan", "fmax", "fmin", "trunc",
        "atan", "atan2", "asin", "acos", "sinh", "cosh", "llround",
        "lrint", "llrint", "nearbyint", "remainder", "exp2", "M_PI",
        "HUGE_VAL", "NAN", "INFINITY"}},
      {"condition_variable",
       {"condition_variable", "condition_variable_any", "cv_status",
        "notify_all_at_thread_exit"}},
      {"cstdarg", {"va_list", "va_start", "va_end", "va_arg", "va_copy"}},
      {"cstddef",
       {"size_t", "ptrdiff_t", "nullptr_t", "byte", "max_align_t",
        "offsetof", "NULL"}},
      {"cstdint",
       {"int8_t", "uint8_t", "int16_t", "uint16_t", "int32_t", "uint32_t",
        "int64_t", "uint64_t", "intptr_t", "uintptr_t", "intmax_t",
        "uintmax_t", "INT8_MAX", "INT16_MAX", "INT32_MAX", "INT64_MAX",
        "INT32_MIN", "INT64_MIN", "UINT32_MAX", "UINT64_MAX"}},
      {"cstdio",
       {"printf", "fprintf", "snprintf", "sprintf", "vsnprintf",
        "vfprintf", "fopen", "fclose", "fread", "fwrite", "fflush",
        "fgets", "fputs", "fputc", "fgetc", "fseek", "ftell", "rewind",
        "perror", "puts", "putchar", "getchar", "stderr", "stdout",
        "stdin", "FILE", "EOF", "SEEK_SET", "SEEK_CUR", "SEEK_END",
        "BUFSIZ", "tmpfile"}},
      {"cstdlib",
       {"malloc", "free", "calloc", "realloc", "abort", "exit", "atexit",
        "getenv", "setenv", "strtol", "strtoul", "strtoll", "strtod",
        "atoi", "atol", "atof", "qsort", "bsearch", "aligned_alloc",
        "EXIT_SUCCESS", "EXIT_FAILURE", "system", "abs", "labs",
        "llabs"}},
      {"cstring",
       {"memcpy", "memset", "memmove", "memcmp", "strlen", "strcmp",
        "strncmp", "strcpy", "strncpy", "strcat", "strncat", "strchr",
        "strrchr", "strstr", "strerror", "strtok"}},
      {"deque", {"deque"}},
      {"exception",
       {"exception", "exception_ptr", "current_exception",
        "rethrow_exception", "make_exception_ptr", "terminate",
        "uncaught_exceptions"}},
      {"filesystem", {"filesystem"}},
      {"fstream", {"ifstream", "ofstream", "fstream"}},
      {"functional",
       {"function", "bind", "ref", "cref", "invoke", "hash", "plus",
        "minus", "less", "greater", "equal_to", "reference_wrapper",
        "multiplies"}},
      {"future",
       {"future", "promise", "async", "shared_future", "packaged_task",
        "launch", "future_status", "future_error"}},
      {"initializer_list", {"initializer_list"}},
      {"iomanip", {"setw", "setprecision", "setfill", "quoted"}},
      {"iostream", {"cout", "cerr", "cin", "clog", "endl", "flush"}},
      {"iterator",
       {"back_inserter", "front_inserter", "inserter", "distance",
        "advance", "next", "prev", "make_move_iterator"}},
      {"limits", {"numeric_limits"}},
      {"list", {"list"}},
      {"map", {"map", "multimap"}},
      {"memory",
       {"unique_ptr", "shared_ptr", "weak_ptr", "make_unique",
        "make_shared", "addressof", "enable_shared_from_this",
        "static_pointer_cast", "const_pointer_cast",
        "dynamic_pointer_cast", "allocator", "destroy_at",
        "construct_at"}},
      {"mutex",
       {"mutex", "lock_guard", "unique_lock", "scoped_lock", "call_once",
        "once_flag", "adopt_lock", "defer_lock", "try_to_lock",
        "recursive_mutex", "timed_mutex"}},
      {"numeric",
       {"accumulate", "iota", "inner_product", "partial_sum", "reduce",
        "gcd", "lcm", "midpoint", "adjacent_difference"}},
      {"optional", {"optional", "nullopt", "make_optional"}},
      {"queue", {"queue", "priority_queue"}},
      {"set", {"set", "multiset"}},
      {"span", {"span"}},
      {"sstream", {"stringstream", "istringstream", "ostringstream"}},
      {"stack", {"stack"}},
      {"stdexcept",
       {"runtime_error", "logic_error", "invalid_argument",
        "out_of_range", "length_error", "domain_error", "range_error",
        "overflow_error", "underflow_error"}},
      {"string",
       {"string", "char_traits", "to_string", "stoi", "stol", "stoll",
        "stoul", "stod", "stof", "getline", "npos"}},
      {"string_view", {"string_view"}},
      {"system_error", {"error_code", "error_category", "system_error",
                        "system_category", "generic_category"}},
      {"thread",
       {"thread", "this_thread", "yield", "sleep_for", "sleep_until",
        "get_id", "jthread"}},
      {"tuple",
       {"tuple", "make_tuple", "tie", "tuple_size", "tuple_element",
        "apply", "forward_as_tuple"}},
      {"type_traits",
       {"enable_if", "enable_if_t", "is_same", "is_same_v", "decay",
        "decay_t", "remove_reference", "remove_reference_t",
        "is_integral", "is_floating_point", "is_arithmetic",
        "conditional", "conditional_t", "invoke_result",
        "invoke_result_t", "is_base_of", "true_type", "false_type",
        "is_const", "remove_cv", "remove_cv_t", "is_trivially_copyable",
        "underlying_type", "underlying_type_t"}},
      {"unistd.h",
       {"read", "write", "close", "unlink", "getpid", "sysconf", "usleep",
        "isatty", "access", "ftruncate", "fsync", "pipe", "dup2",
        "STDERR_FILENO", "STDOUT_FILENO", "STDIN_FILENO"}},
      {"unordered_map", {"unordered_map", "unordered_multimap"}},
      {"unordered_set", {"unordered_set", "unordered_multiset"}},
      {"utility",
       {"move", "forward", "swap", "pair", "make_pair", "exchange",
        "declval", "in_place", "as_const", "index_sequence",
        "make_index_sequence"}},
      {"variant",
       {"variant", "get_if", "holds_alternative", "visit", "monostate",
        "variant_size", "bad_variant_access"}},
      {"vector", {"vector"}},
  };
  return *table;
}

/// Parses one line as an #include directive; returns true and fills
/// `target` / `system` on match.
bool ParseIncludeLine(const std::string& line, std::string* target,
                      bool* system) {
  size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '#') return false;
  ++i;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, 7, "include") != 0) return false;
  i += 7;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size()) return false;
  char open = line[i];
  char close;
  if (open == '"') {
    close = '"';
    *system = false;
  } else if (open == '<') {
    close = '>';
    *system = true;
  } else {
    return false;
  }
  size_t end = line.find(close, i + 1);
  if (end == std::string::npos) return false;
  *target = line.substr(i + 1, end - i - 1);
  return !target->empty();
}

/// Blanks every #include directive line so include targets ("vector",
/// "common/rng.h") never count as identifier *usage* in the includer.
std::string BlankIncludeLines(const std::string& text) {
  std::string out = text;
  size_t line_start = 0;
  while (line_start < out.size()) {
    size_t line_end = out.find('\n', line_start);
    if (line_end == std::string::npos) line_end = out.size();
    std::string line = out.substr(line_start, line_end - line_start);
    std::string target;
    bool system = false;
    if (ParseIncludeLine(line, &target, &system)) {
      for (size_t i = line_start; i < line_end; ++i) out[i] = ' ';
    }
    line_start = line_end + 1;
  }
  return out;
}

std::string PrimaryHeaderOf(const std::string& path) {
  size_t dot = path.rfind('.');
  if (dot == std::string::npos) return "";
  std::string ext = path.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return "";
  return path.substr(0, dot) + ".h";
}

std::map<std::string, int> RankMap(const std::vector<Layer>& layers) {
  std::map<std::string, int> ranks;
  for (const Layer& layer : layers) ranks[layer.module] = layer.rank;
  return ranks;
}

void SortFindings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

/// The thread-safety annotation macros whose arguments name locks
/// (common/thread_annotations.h).
constexpr const char* kLockAnnotations[] = {
    "GUARDED_BY",     "PT_GUARDED_BY",  "REQUIRES",      "REQUIRES_SHARED",
    "ACQUIRE",        "RELEASE",        "EXCLUDES",      "TRY_ACQUIRE",
    "ACQUIRED_AFTER", "ACQUIRED_BEFORE"};

/// Every identifier appearing inside a lock-annotation argument list in
/// `stripped`.
std::set<std::string> AnnotationRefs(const std::string& stripped) {
  std::set<std::string> refs;
  for (const char* macro : kLockAnnotations) {
    std::string token = macro;
    for (size_t pos = stripped.find(token); pos != std::string::npos;
         pos = stripped.find(token, pos + 1)) {
      if (!TokenAt(stripped, pos, token)) continue;
      size_t open = SkipSpaces(stripped, pos + token.size());
      if (open >= stripped.size() || stripped[open] != '(') continue;
      int depth = 1;
      size_t close = open + 1;
      while (close < stripped.size() && depth > 0) {
        if (stripped[close] == '(') ++depth;
        if (stripped[close] == ')') --depth;
        ++close;
      }
      for (const std::string& run : WordRuns(
               stripped.substr(open + 1, close - open - 2))) {
        refs.insert(run);
      }
    }
  }
  return refs;
}

/// Finds `std::mutex NAME;` / `DebugMutex NAME{...};` member/variable
/// declarations in `stripped` (type token followed by an identifier, then
/// `;`, `{`, or `=` — never matches parameters, template arguments, or
/// constructor names).
void FindLockDeclarations(const SourceFile& file, const std::string& stripped,
                          std::vector<LockSite>& out) {
  for (const char* type : {"std::mutex", "DebugMutex"}) {
    std::string token = type;
    for (size_t pos = stripped.find(token); pos != std::string::npos;
         pos = stripped.find(token, pos + 1)) {
      if (!TokenAt(stripped, pos, token)) continue;
      size_t p = SkipSpaces(stripped, pos + token.size());
      size_t q = p;
      while (q < stripped.size() && IsWordChar(stripped[q])) ++q;
      if (q == p) continue;  // not followed by an identifier
      if (stripped[p] >= '0' && stripped[p] <= '9') continue;
      size_t r = SkipSpaces(stripped, q);
      if (r >= stripped.size() ||
          (stripped[r] != ';' && stripped[r] != '{' && stripped[r] != '=')) {
        continue;
      }
      LockSite site;
      site.path = file.path;
      site.line = scan::LineOfOffset(file.contents, pos);
      site.name = stripped.substr(p, q - p);
      site.type = type;
      out.push_back(site);
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Module-level dependency edges with include counts (cross-module project
/// includes only).
std::map<std::pair<std::string, std::string>, int> ModuleEdges(
    const TreeGraph& graph) {
  std::map<std::pair<std::string, std::string>, int> edges;
  for (const IncludeEdge& edge : graph.edges) {
    if (edge.system) continue;
    std::string from = ModuleOf(edge.from);
    std::string to = ModuleOf(edge.to);
    if (from == to) continue;
    ++edges[{from, to}];
  }
  return edges;
}

}  // namespace

std::vector<Layer> DefaultLayers() {
  // src/'s declared DAG, bottom-up. Same-rank modules are peers and may not
  // include each other; a new module must be added here (and to DESIGN.md
  // "Architecture & lock-order analysis") before anything can include it.
  return {
      {"common", 0},  {"runtime", 1}, {"tensor", 2},  {"nn", 3},
      {"data", 3},    {"losses", 3},  {"tsne", 3},    {"ml", 4},
      {"metrics", 4}, {"testing", 4}, {"sampling", 5}, {"core", 6},
      {"gan", 6},     {"serve", 7},
  };
}

std::string ModuleOf(const std::string& path) {
  size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

Result<TreeGraph> ScanTree(const std::string& root) {
  Result<std::vector<SourceFile>> tree =
      scan::LoadTree(root, {"lint_fixtures", "analyze_fixtures"});
  if (!tree.ok()) return tree.status();
  TreeGraph graph;
  graph.files = *std::move(tree);
  for (const SourceFile& file : graph.files) {
    // Comments are blanked but string literals kept: the include target
    // lives in one.
    std::string text = scan::StripComments(file.contents);
    size_t line_start = 0;
    int line = 1;
    while (line_start < text.size()) {
      size_t line_end = text.find('\n', line_start);
      if (line_end == std::string::npos) line_end = text.size();
      std::string target;
      bool system = false;
      if (ParseIncludeLine(text.substr(line_start, line_end - line_start),
                           &target, &system)) {
        graph.edges.push_back(IncludeEdge{file.path, line, target, system});
      }
      line_start = line_end + 1;
      ++line;
    }
  }
  return graph;
}

std::vector<Finding> CheckLayering(const TreeGraph& graph,
                                   const std::vector<Layer>& layers) {
  std::map<std::string, int> ranks = RankMap(layers);
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : graph.files) by_path[file.path] = &file;
  std::vector<Finding> findings;
  auto emit = [&](const IncludeEdge& edge, std::string message) {
    auto it = by_path.find(edge.from);
    if (it != by_path.end() &&
        scan::Suppressed(it->second->contents, edge.line, "layering")) {
      return;
    }
    findings.push_back(
        Finding{edge.from, edge.line, "layering", std::move(message)});
  };
  for (const IncludeEdge& edge : graph.edges) {
    if (edge.system) continue;
    std::string from = ModuleOf(edge.from);
    std::string to = ModuleOf(edge.to);
    if (from == to) continue;  // intra-module includes are always legal
    auto from_rank = ranks.find(from);
    auto to_rank = ranks.find(to);
    if (from_rank == ranks.end()) {
      emit(edge, StrFormat("module '%s' is not declared in the layer DAG; "
                           "declare its rank before it can include '%s'",
                           from.c_str(), edge.to.c_str()));
      continue;
    }
    if (to_rank == ranks.end()) {
      emit(edge, StrFormat("include of '%s': module '%s' is not declared "
                           "in the layer DAG",
                           edge.to.c_str(), to.c_str()));
      continue;
    }
    if (to_rank->second >= from_rank->second) {
      emit(edge,
           StrFormat("include of '%s' inverts the layer DAG: '%s' (rank %d) "
                     "may only depend on modules ranked strictly below %d, "
                     "but '%s' has rank %d",
                     edge.to.c_str(), from.c_str(), from_rank->second,
                     from_rank->second, to.c_str(), to_rank->second));
    }
  }
  SortFindings(findings);
  return findings;
}

std::vector<Finding> CheckIncludeCycles(const TreeGraph& graph) {
  // Header-to-header include graph; .cc files cannot be included, so they
  // can never be part of a cycle.
  std::map<std::string, std::vector<const IncludeEdge*>> out_edges;
  std::set<std::string> headers;
  for (const SourceFile& file : graph.files) {
    if (file.path.size() >= 2 &&
        file.path.compare(file.path.size() - 2, 2, ".h") == 0) {
      headers.insert(file.path);
    }
  }
  for (const IncludeEdge& edge : graph.edges) {
    if (edge.system) continue;
    if (headers.count(edge.from) == 0 || headers.count(edge.to) == 0) {
      continue;
    }
    out_edges[edge.from].push_back(&edge);
  }
  enum class Color { kWhite, kGrey, kBlack };
  std::map<std::string, Color> color;
  for (const std::string& header : headers) color[header] = Color::kWhite;
  std::vector<Finding> findings;
  std::set<std::set<std::string>> reported;  // dedupe by member set
  std::vector<std::string> path;

  // Iterative DFS with an explicit stack of (node, next edge index) so deep
  // include chains cannot overflow the call stack.
  struct Frame {
    std::string node;
    size_t next = 0;
  };
  for (const std::string& start : headers) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> stack{{start, 0}};
    color[start] = Color::kGrey;
    path.push_back(start);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& edges = out_edges[frame.node];
      if (frame.next >= edges.size()) {
        color[frame.node] = Color::kBlack;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge* edge = edges[frame.next++];
      Color target_color = color[edge->to];
      if (target_color == Color::kGrey) {
        // Back edge: the cycle is the path suffix starting at edge->to.
        auto cycle_start = std::find(path.begin(), path.end(), edge->to);
        std::vector<std::string> cycle(cycle_start, path.end());
        std::set<std::string> key(cycle.begin(), cycle.end());
        if (reported.insert(key).second) {
          std::string pretty;
          for (const std::string& node : cycle) {
            pretty += node;
            pretty += " -> ";
          }
          pretty += edge->to;
          findings.push_back(Finding{
              edge->from, edge->line, "include-cycle",
              StrFormat("#include \"%s\" closes an include cycle: %s",
                        edge->to.c_str(), pretty.c_str())});
        }
      } else if (target_color == Color::kWhite) {
        color[edge->to] = Color::kGrey;
        path.push_back(edge->to);
        stack.push_back({edge->to, 0});
      }
    }
  }
  SortFindings(findings);
  return findings;
}

std::vector<Finding> CheckUnusedIncludes(const TreeGraph& graph) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : graph.files) by_path[file.path] = &file;
  // Export sets are computed lazily and memoized: most headers are included
  // many times.
  std::map<std::string, std::set<std::string>> export_cache;
  auto exports_of = [&](const std::string& header) -> const
      std::set<std::string>& {
        auto it = export_cache.find(header);
        if (it == export_cache.end()) {
          it = export_cache
                   .emplace(header,
                            ExportedNames(by_path.at(header)->contents))
                   .first;
        }
        return it->second;
      };
  const auto& system_exports = SystemExports();

  std::vector<Finding> findings;
  std::string current_file;
  std::set<std::string> usage;  // identifier runs of the current includer
  for (const IncludeEdge& edge : graph.edges) {
    const SourceFile& file = *by_path.at(edge.from);
    if (edge.from != current_file) {
      current_file = edge.from;
      usage = WordRuns(BlankIncludeLines(
          scan::StripCommentsAndStrings(file.contents)));
    }
    bool used = false;
    if (edge.system) {
      auto it = system_exports.find(edge.to);
      if (it == system_exports.end()) continue;  // unmodeled: never flag
      for (const std::string& name : it->second) {
        if (usage.count(name) != 0) {
          used = true;
          break;
        }
      }
    } else {
      if (by_path.count(edge.to) == 0) continue;  // outside the tree
      if (edge.to == PrimaryHeaderOf(edge.from)) continue;
      // The determinism linter's mutex-annotations rule *mandates* this
      // include in any file mentioning std::mutex, whether or not a macro
      // is used there; the two tools must not disagree.
      if (edge.to == "common/thread_annotations.h" &&
          usage.count("mutex") != 0) {
        continue;
      }
      const std::set<std::string>& exported = exports_of(edge.to);
      // A header exporting nothing recognizable cannot be judged.
      if (exported.empty()) continue;
      for (const std::string& name : exported) {
        if (usage.count(name) != 0) {
          used = true;
          break;
        }
      }
    }
    if (used) continue;
    if (scan::Suppressed(file.contents, edge.line, "unused-include")) {
      continue;
    }
    findings.push_back(Finding{
        edge.from, edge.line, "unused-include",
        StrFormat("nothing exported by %s%s%s is referenced here; drop the "
                  "include or annotate it lint:allow(unused-include)",
                  edge.system ? "<" : "\"", edge.to.c_str(),
                  edge.system ? ">" : "\"")});
  }
  SortFindings(findings);
  return findings;
}

std::vector<LockSite> BuildLockRegistry(const TreeGraph& graph) {
  std::vector<LockSite> registry;
  for (const SourceFile& file : graph.files) {
    std::string stripped = scan::StripCommentsAndStrings(file.contents);
    size_t before = registry.size();
    FindLockDeclarations(file, stripped, registry);
    if (registry.size() == before) continue;
    std::set<std::string> refs = AnnotationRefs(stripped);
    for (size_t i = before; i < registry.size(); ++i) {
      registry[i].annotation_refs =
          refs.count(registry[i].name) != 0 ? 1 : 0;
    }
  }
  std::sort(registry.begin(), registry.end(),
            [](const LockSite& a, const LockSite& b) {
              if (a.path != b.path) return a.path < b.path;
              return a.line < b.line;
            });
  return registry;
}

std::vector<Finding> CheckLockAnnotations(const TreeGraph& graph) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : graph.files) by_path[file.path] = &file;
  std::vector<Finding> findings;
  for (const LockSite& site : BuildLockRegistry(graph)) {
    if (site.annotation_refs > 0) continue;
    if (scan::Suppressed(by_path.at(site.path)->contents, site.line,
                         "unannotated-mutex")) {
      continue;
    }
    findings.push_back(Finding{
        site.path, site.line, "unannotated-mutex",
        StrFormat("%s '%s' is not referenced by any thread-safety "
                  "annotation in this file; add GUARDED_BY/REQUIRES on the "
                  "state it protects (see DESIGN.md \"Static analysis\")",
                  site.type.c_str(), site.name.c_str())});
  }
  SortFindings(findings);
  return findings;
}

std::vector<Finding> AnalyzeTree(const TreeGraph& graph,
                                 const std::vector<Layer>& layers) {
  std::vector<Finding> findings = CheckLayering(graph, layers);
  for (auto& list : {CheckIncludeCycles(graph), CheckUnusedIncludes(graph),
                     CheckLockAnnotations(graph)}) {
    findings.insert(findings.end(), list.begin(), list.end());
  }
  SortFindings(findings);
  return findings;
}

std::string LayeringDot(const TreeGraph& graph,
                        const std::vector<Layer>& layers) {
  std::map<std::string, int> ranks = RankMap(layers);
  std::string out = "digraph eos_layers {\n  rankdir=BT;\n";
  // Group declared modules by rank so the DAG renders bottom-up.
  std::map<int, std::vector<std::string>> by_rank;
  for (const Layer& layer : layers) {
    by_rank[layer.rank].push_back(layer.module);
  }
  for (const auto& [rank, modules] : by_rank) {
    out += StrFormat("  { rank=same;");
    for (const std::string& module : modules) {
      out += StrFormat(" \"%s\" [label=\"%s\\nrank %d\"];", module.c_str(),
                       module.c_str(), rank);
    }
    out += " }\n";
  }
  for (const auto& [edge, count] : ModuleEdges(graph)) {
    out += StrFormat("  \"%s\" -> \"%s\" [label=\"%d\"];\n",
                     edge.first.c_str(), edge.second.c_str(), count);
  }
  out += "}\n";
  return out;
}

std::string AnalysisJson(const TreeGraph& graph,
                         const std::vector<Layer>& layers) {
  std::string out = "{\n  \"layers\": [\n";
  for (size_t i = 0; i < layers.size(); ++i) {
    out += StrFormat("    {\"module\": \"%s\", \"rank\": %d}%s\n",
                     JsonEscape(layers[i].module).c_str(), layers[i].rank,
                     i + 1 < layers.size() ? "," : "");
  }
  out += "  ],\n  \"module_edges\": [\n";
  auto edges = ModuleEdges(graph);
  size_t i = 0;
  for (const auto& [edge, count] : edges) {
    out += StrFormat(
        "    {\"from\": \"%s\", \"to\": \"%s\", \"includes\": %d}%s\n",
        JsonEscape(edge.first).c_str(), JsonEscape(edge.second).c_str(),
        count, ++i < edges.size() ? "," : "");
  }
  out += "  ],\n  \"locks\": [\n";
  std::vector<LockSite> registry = BuildLockRegistry(graph);
  for (size_t j = 0; j < registry.size(); ++j) {
    const LockSite& site = registry[j];
    out += StrFormat(
        "    {\"file\": \"%s\", \"line\": %d, \"name\": \"%s\", "
        "\"type\": \"%s\", \"annotated\": %s}%s\n",
        JsonEscape(site.path).c_str(), site.line,
        JsonEscape(site.name).c_str(), JsonEscape(site.type).c_str(),
        site.annotation_refs > 0 ? "true" : "false",
        j + 1 < registry.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace eos::analyze
