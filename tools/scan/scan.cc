#include "scan.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace eos::scan {

std::string FormatFinding(const Finding& finding) {
  return StrFormat("%s:%d: [%s] %s", finding.path.c_str(), finding.line,
                   finding.rule.c_str(), finding.message.c_str());
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool TokenAt(const std::string& source, size_t pos, const std::string& token) {
  if (source.compare(pos, token.size(), token) != 0) return false;
  if (pos > 0 && IsWordChar(source[pos - 1])) return false;
  size_t end = pos + token.size();
  if (end < source.size() && IsWordChar(source[end])) return false;
  return true;
}

size_t SkipSpaces(const std::string& source, size_t pos) {
  while (pos < source.size() &&
         (source[pos] == ' ' || source[pos] == '\t' || source[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

char PrevNonSpace(const std::string& source, size_t pos) {
  while (pos > 0) {
    --pos;
    char c = source[pos];
    if (c != ' ' && c != '\t' && c != '\n') return c;
  }
  return '\0';
}

int LineOfOffset(const std::string& source, size_t pos) {
  return 1 + static_cast<int>(
                 std::count(source.begin(), source.begin() + pos, '\n'));
}

std::string LineText(const std::string& source, int line) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    start = source.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  size_t end = source.find('\n', start);
  return source.substr(start, end == std::string::npos ? end : end - start);
}

bool ContainsToken(const std::string& source, const std::string& token) {
  for (size_t pos = source.find(token); pos != std::string::npos;
       pos = source.find(token, pos + 1)) {
    if (TokenAt(source, pos, token)) return true;
  }
  return false;
}

namespace {

/// One state machine serves both strip variants: `blank_strings` decides
/// whether string/char-literal bodies are blanked or preserved. Literals are
/// tracked either way so a quote can never hide or fabricate a comment.
std::string StripImpl(const std::string& source, bool blank_strings) {
  std::string out = source;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  size_t i = 0;
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  auto blank_literal = [&](size_t pos) {
    if (blank_strings) blank(pos);
  };
  while (i < source.size()) {
    char c = source[i];
    char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsWordChar(source[i - 1]))) {
          // Raw string R"delim( ... )delim": find the delimiter, then the
          // matching close sequence; blank the whole literal.
          size_t open = source.find('(', i + 2);
          if (open == std::string::npos) {
            ++i;
            break;
          }
          std::string close;
          close.push_back(')');
          close.append(source, i + 2, open - (i + 2));
          close.push_back('"');
          size_t end = source.find(close, open + 1);
          size_t stop = end == std::string::npos ? source.size()
                                                 : end + close.size();
          for (size_t j = i; j < stop; ++j) blank_literal(j);
          i = stop;
        } else if (c == '"') {
          state = State::kString;
          blank_literal(i);
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          blank_literal(i);
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          blank(i);
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          blank(i);
          blank(i + 1);
          state = State::kCode;
          i += 2;
        } else {
          blank(i);
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          blank_literal(i);
          if (i + 1 < source.size()) blank_literal(i + 1);
          i += 2;
        } else {
          if (c == quote) state = State::kCode;
          blank_literal(i);
          ++i;
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& source) {
  return StripImpl(source, /*blank_strings=*/true);
}

std::string StripComments(const std::string& source) {
  return StripImpl(source, /*blank_strings=*/false);
}

bool Suppressed(const std::string& original, int line,
                const std::string& rule) {
  std::string marker = StrFormat("lint:allow(%s)", rule.c_str());
  if (LineText(original, line).find(marker) != std::string::npos) return true;
  return line > 1 &&
         LineText(original, line - 1).find(marker) != std::string::npos;
}

Result<std::vector<SourceFile>> LoadTree(
    const std::string& root, const std::vector<std::string>& skip_dirs) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound(
        StrFormat("scan root is not a directory: %s", root.c_str()));
  }
  std::vector<fs::path> files;
  for (fs::recursive_directory_iterator it(root, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (it->is_directory()) {
      std::string dir_name = it->path().filename().string();
      if (std::find(skip_dirs.begin(), skip_dirs.end(), dir_name) !=
          skip_dirs.end()) {
        it.disable_recursion_pending();
        continue;
      }
    }
    if (!it->is_regular_file()) continue;
    std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    return Status::IoError(StrFormat("failed to walk %s: %s", root.c_str(),
                                     ec.message().c_str()));
  }
  std::sort(files.begin(), files.end());
  std::vector<SourceFile> out;
  out.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Status::IoError(
          StrFormat("failed to read %s", file.string().c_str()));
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    out.push_back(SourceFile{
        fs::path(file).lexically_relative(root).generic_string(),
        contents.str()});
  }
  return out;
}

}  // namespace eos::scan
