#ifndef EOS_TOOLS_SCAN_SCAN_H_
#define EOS_TOOLS_SCAN_SCAN_H_

#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// The token-level source-scanning core shared by the in-repo static
/// analysis tools: the determinism linter (tools/lint) and the architecture
/// analyzer (tools/analyze). Both operate on the same substrate — a
/// comment/string-stripped copy of each file where byte offsets still map to
/// unchanged line numbers — so a rule written against this layer can never
/// be fooled by a token inside a comment, string literal, or raw string.
///
/// What lives here and why:
///   - StripCommentsAndStrings / StripComments: the normalization passes.
///     The first blanks string bodies too (for identifier matching); the
///     second keeps them (include directives carry their target in a string
///     literal, which the analyzer must still read).
///   - TokenAt / IsWordChar / SkipSpaces / PrevNonSpace: word-boundary
///     token matching on the stripped text.
///   - LineOfOffset / LineText: offset -> 1-based line mapping for reports.
///   - Finding / FormatFinding: the one true `path:line: [rule] message`
///     output format, shared so lint and analyze findings interleave
///     uniformly in CI logs.
///   - Suppressed: the `lint:allow(<rule>)` same/previous-line suppression
///     convention, honored by every rule in every tool.
///   - LoadTree: the deterministic (sorted) tree walk over *.h/*.cc/*.cpp,
///     with fixture-directory skipping.

namespace eos::scan {

/// One rule violation at a source location.
struct Finding {
  std::string path;  // as passed in / relative to the scanned root
  int line = 0;      // 1-based
  std::string rule;  // stable rule id, e.g. "banned-rng", "layering"
  std::string message;
};

/// "path:line: [rule] message" — the one true output format (tested).
std::string FormatFinding(const Finding& finding);

/// True for [A-Za-z0-9_] — the characters that extend an identifier.
bool IsWordChar(char c);

/// True when source[pos, pos + token.size()) is `token` with non-word
/// characters (or file boundaries) on both sides. ':' does not count as a
/// word character, so "std::mutex" still matches inside "::std::mutex".
bool TokenAt(const std::string& source, size_t pos, const std::string& token);

/// First position >= pos that is not a space, tab, or newline.
size_t SkipSpaces(const std::string& source, size_t pos);

/// Last non-space character strictly before `pos`, or '\0' at file start.
char PrevNonSpace(const std::string& source, size_t pos);

/// 1-based line number of byte offset `pos`.
int LineOfOffset(const std::string& source, size_t pos);

/// The 1-based line `line` of `source` (without the trailing newline).
std::string LineText(const std::string& source, int line);

/// True when `source` contains `token` as a word-bounded match anywhere.
bool ContainsToken(const std::string& source, const std::string& token);

/// Replaces the bodies of //, /* */ comments, "..." / '...' literals, and
/// R"delim(...)delim" raw strings with spaces, preserving every newline so
/// byte offsets map to unchanged line numbers.
std::string StripCommentsAndStrings(const std::string& source);

/// Like StripCommentsAndStrings but KEEPS string and character literals
/// (only comments are blanked). Used where the directive of interest carries
/// its payload in a string — e.g. `#include "common/status.h"`.
std::string StripComments(const std::string& source);

/// True when the finding's line (or the one above) carries a
/// `lint:allow(<rule>)` marker in the original source. One suppression
/// grammar serves every tool built on this core.
bool Suppressed(const std::string& original, int line, const std::string& rule);

/// One file of a loaded source tree.
struct SourceFile {
  std::string path;  // relative to the loaded root, '/'-separated
  std::string contents;
};

/// Walks `root` recursively and loads every *.h / *.cc / *.cpp file in
/// deterministic (sorted-by-path) order. Directories whose name appears in
/// `skip_dirs` are skipped unless they are the root itself — this is how
/// deliberately-rule-breaking fixture trees (tests/tools/*_fixtures/) stay
/// loadable by their own tests without failing tree-wide sweeps. Fails with
/// NotFound / IoError when the tree cannot be read.
Result<std::vector<SourceFile>> LoadTree(
    const std::string& root, const std::vector<std::string>& skip_dirs);

}  // namespace eos::scan

#endif  // EOS_TOOLS_SCAN_SCAN_H_
