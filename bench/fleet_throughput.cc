// Fleet serving performance: closed-loop throughput of serve::Fleet as a
// function of shard count, with the full operational lifecycle fired in the
// middle of every cell: a model hot-swap at 50% of the traffic, a replica
// poison at 60% (time-to-recovery = poison -> supervisor splice witnessed),
// a guardrail-tripped canary at 70% (auto-abort latency), and a healthy
// canary at 80% (promote latency). The numbers measure the steady state AND
// every cutover path; the self-check at the end exits nonzero unless every
// cell finished with dropped_on_drain == 0, failed_requests == 0, a
// witnessed recovery, an aborted bad canary, and a promoted good one — the
// zero-downtime contract, enforced by the bench itself.
//
// Run: ./build/bench/fleet_throughput
//      ./build/bench/fleet_throughput --shards_list=1,2,4 --clients=64

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "nn/resnet.h"
#include "serve/fleet.h"
#include "serve/supervisor.h"
#include "tensor/tensor_ops.h"
#include "testing/fault_injection.h"

namespace {

std::vector<int64_t> ParseIntList(const std::string& spec) {
  std::vector<int64_t> out;
  for (const std::string& raw : eos::StrSplit(spec, ',')) {
    std::string name = eos::StrTrim(raw);
    if (!name.empty()) out.push_back(std::stoll(name));
  }
  return out;
}

int64_t g_image_size = 10;
int64_t g_classes = 10;

eos::nn::ImageClassifier BuildNet(uint64_t seed) {
  eos::Rng rng(seed);
  eos::nn::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = g_classes;
  return eos::nn::BuildResNet(config, rng);
}

/// The net factory the fleet clones replicas from (weights come from the
/// deployed checkpoint, so the init seed is arbitrary but fixed).
eos::nn::ImageClassifier FactoryNet() { return BuildNet(0xF1EE7); }

/// Saves a warmed-up (BN statistics moved) net as a training checkpoint.
bool WriteCheckpoint(const std::string& path, uint64_t seed) {
  eos::nn::ImageClassifier net = BuildNet(seed);
  eos::Rng rng(seed + 1);
  eos::Tensor warmup = eos::Tensor::Uniform(
      {16, 3, g_image_size, g_image_size}, -1.0f, 1.0f, rng);
  net.Forward(warmup, /*training=*/true);
  eos::TrainCheckpoint ckpt;
  eos::Status status = eos::SaveCheckpoint(ckpt, net, path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 status.ToString().c_str());
  }
  return status.ok();
}

struct Cell {
  int64_t shards = 0;
  int64_t requests = 0;
  double seconds = 0;
  double swap_ms = 0;
  double recovery_ms = -1;        // poison armed -> supervisor splice
  double canary_abort_ms = -1;    // tripped canary start -> auto-abort
  double canary_promote_ms = -1;  // healthy canary start -> full roll
  int64_t failed_requests = 0;
  int64_t served_v1 = 0;
  int64_t served_v2 = 0;
  eos::serve::FleetSnapshot stats;
};

std::string CellJson(const Cell& c) {
  return eos::StrFormat(
      "{\"shards\": %lld, \"requests\": %lld, \"seconds\": %.4f, "
      "\"rps\": %.1f, \"swap_ms\": %.2f, \"recovery_ms\": %.2f, "
      "\"canary_abort_ms\": %.2f, \"canary_promote_ms\": %.2f, "
      "\"replicas_replaced\": %lld, \"failed_requests\": %lld, "
      "\"dropped_on_drain\": %lld, \"admission_rejected\": %lld, "
      "\"served_v1\": %lld, \"served_v2\": %lld, \"swaps\": %lld, "
      "\"rollbacks\": %lld, \"max_queue_depth\": %lld}",
      static_cast<long long>(c.shards), static_cast<long long>(c.requests),
      c.seconds, static_cast<double>(c.requests) / c.seconds, c.swap_ms,
      c.recovery_ms, c.canary_abort_ms, c.canary_promote_ms,
      static_cast<long long>(c.stats.totals.replicas_replaced),
      static_cast<long long>(c.failed_requests),
      static_cast<long long>(c.stats.totals.dropped_on_drain),
      static_cast<long long>(c.stats.admission_rejected),
      static_cast<long long>(c.served_v1), static_cast<long long>(c.served_v2),
      static_cast<long long>(c.stats.totals.swaps),
      static_cast<long long>(c.stats.totals.rollbacks),
      static_cast<long long>(c.stats.totals.max_queue_depth));
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  int64_t* image_size = flags.AddInt("image_size", 10, "image edge size");
  int64_t* classes = flags.AddInt("classes", 10, "number of classes");
  int64_t* requests = flags.AddInt("requests", 512, "requests per cell");
  int64_t* clients = flags.AddInt("clients", 64, "closed-loop client threads");
  int64_t* workers = flags.AddInt("workers", 2, "worker threads per shard");
  int64_t* batch = flags.AddInt("batch", 16, "max micro-batch size");
  int64_t* delay_us =
      flags.AddInt("delay_us", 1000, "max queue delay per request (us)");
  int64_t* depth = flags.AddInt("depth", 1024, "per-shard queue depth");
  int64_t* seed = flags.AddInt("seed", 1, "rng seed");
  std::string* shards_list =
      flags.AddString("shards_list", "1,2,4", "shard count sweep");
  std::string* ckpt_prefix = flags.AddString(
      "ckpt", "/tmp/eos_fleet_bench_ckpt", "scratch checkpoint prefix");
  std::string* out =
      flags.AddString("out", "BENCH_fleet.json", "JSON output path");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }
  g_image_size = *image_size;
  g_classes = *classes;

  // Two distinct checkpoints: every cell boots on v1 and hot-swaps to v2
  // mid-run. Serving cost does not depend on the weight values, so
  // untrained warmed-up nets measure the real pipeline.
  std::string path_v1 = *ckpt_prefix + "_v1.eosc";
  std::string path_v2 = *ckpt_prefix + "_v2.eosc";
  if (!WriteCheckpoint(path_v1, static_cast<uint64_t>(*seed) + 10) ||
      !WriteCheckpoint(path_v2, static_cast<uint64_t>(*seed) + 20)) {
    return 1;
  }

  eos::Rng image_rng(static_cast<uint64_t>(*seed) + 2);
  std::vector<eos::Tensor> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(eos::Tensor::Uniform({3, *image_size, *image_size}, -1.0f,
                                        1.0f, image_rng));
  }

  eos::testing::FaultInjector::Global().DisarmAll();
  std::printf("fleet_throughput: %lld requests/cell, %lld clients, "
              "%lld workers/shard; swap@50%%, kill@60%%, "
              "canary-abort@70%%, canary-promote@80%%\n\n",
              static_cast<long long>(*requests),
              static_cast<long long>(*clients),
              static_cast<long long>(*workers));
  std::printf("  %-8s %-10s %-10s %-10s %-10s %-10s %-10s\n", "shards",
              "req/s", "swap_ms", "recov_ms", "abort_ms", "promo_ms",
              "dropped");

  std::vector<Cell> cells;
  bool contract_violated = false;
  for (int64_t shards : ParseIntList(*shards_list)) {
    eos::serve::FleetOptions options;
    options.num_shards = static_cast<int>(shards);
    options.server.num_workers = static_cast<int>(*workers);
    options.server.batcher.max_batch_size = *batch;
    options.server.batcher.max_queue_delay_us = *delay_us;
    options.server.batcher.max_queue_depth = *depth;
    // Self-healing on: the 60% phase poisons a replica and times the
    // supervisor's detect -> reload -> splice cycle.
    options.server.health.breaker.cooldown_us = 5000;
    options.supervisor.enabled = true;
    options.supervisor.poll_interval_us = 1000;
    options.supervisor.unhealthy_polls = 1;
    auto fleet = eos::serve::Fleet::Create(FactoryNet, path_v1, options);
    if (!fleet.ok()) {
      std::fprintf(stderr, "fleet create failed: %s\n",
                   fleet.status().ToString().c_str());
      return 1;
    }

    // Closed-loop clients run until the script releases them (stop flag),
    // not for a fixed quota: the canary phases need live traffic to fill
    // their evaluation windows, however fast the machine is. `requests` is
    // the minimum load; the realized count lands in the cell.
    std::atomic<int64_t> completed{0};
    std::atomic<int64_t> failed{0};
    std::atomic<int64_t> served_v1{0};
    std::atomic<int64_t> served_v2{0};
    std::atomic<bool> stop{false};
    eos::Stopwatch watch;
    std::vector<std::thread> client_threads;
    for (int64_t c = 0; c < *clients; ++c) {
      client_threads.emplace_back([&, c] {
        for (int64_t i = c; !stop.load(std::memory_order_acquire);
             i += *clients) {
          const eos::Tensor& image =
              pool[static_cast<size_t>(i) % pool.size()];
          for (;;) {
            auto f = (*fleet)->Submit(static_cast<uint64_t>(i), image.Clone());
            if (!f.ok()) {
              std::this_thread::yield();  // backpressure: retry
              continue;
            }
            eos::Result<eos::serve::Prediction> r =
                std::move(f).value().get();
            if (!r.ok()) {
              // The poison phase makes Unavailable a transient condition
              // (the batch hit the dying replica; the supervisor is already
              // replacing it) — a patient client must never terminally
              // fail, so only non-transient codes count as failures.
              if (r.status().code() == eos::StatusCode::kUnavailable) {
                std::this_thread::yield();
                continue;
              }
              failed.fetch_add(1);
            } else {
              (r->version == 1 ? served_v1 : served_v2).fetch_add(1);
            }
            completed.fetch_add(1);
            break;
          }
        }
      });
    }

    // The mid-run hot swap: wait for half the traffic, then roll v2 across
    // every shard while the clients keep hammering.
    while (completed.load() < *requests / 2) std::this_thread::yield();
    eos::Stopwatch swap_watch;
    eos::Status deploy = (*fleet)->DeployCheckpoint(2, path_v2);
    double swap_ms = swap_watch.Seconds() * 1000.0;
    if (!deploy.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n", deploy.ToString().c_str());
      return 1;
    }
    // 60%: kill a replica. Time-to-recovery is poison armed -> the
    // supervisor's splice observed in its snapshot.
    while (completed.load() < *requests * 60 / 100) std::this_thread::yield();
    double recovery_ms = -1.0;
    bool healed = false;
    {
      eos::Stopwatch recovery_watch;
      auto poison =
          eos::testing::ScopedFault::Failure(eos::serve::kReplicaPoisonFault,
                                             /*count=*/1);
      healed = (*fleet)->supervisor()->WaitFor(
          [](const eos::serve::SupervisorSnapshot& s) {
            return s.replicas_replaced >= 1;
          },
          /*timeout_us=*/20000000);
      if (healed) recovery_ms = recovery_watch.Seconds() * 1000.0;
    }

    // 70%: a canary whose guardrail trips (fault-forced) — measures the
    // auto-abort turnaround including the canary server's drain.
    while (completed.load() < *requests * 70 / 100) std::this_thread::yield();
    eos::serve::CanaryOptions canary;
    canary.keyspace_fraction = 0.5;
    canary.min_requests_per_window = 8;
    canary.evaluation_windows = 1;
    canary.window_timeout_us = 15000000;
    double canary_abort_ms = -1.0;
    bool abort_ok = false;
    {
      eos::Stopwatch abort_watch;
      auto trip = eos::testing::ScopedFault::Failure(
          eos::serve::kCanaryGuardrailTrip, /*count=*/1);
      auto report = (*fleet)->CanaryDeploy(3, path_v2, canary);
      canary_abort_ms = abort_watch.Seconds() * 1000.0;
      abort_ok = report.ok() &&
                 report->outcome == eos::serve::CanaryOutcome::kAborted;
    }

    // 80%: a healthy canary — measures evaluate-and-promote end to end
    // (windows filled by live traffic, then the same roll as a deploy).
    while (completed.load() < *requests * 80 / 100) std::this_thread::yield();
    eos::Stopwatch promote_watch;
    auto promote = (*fleet)->CanaryDeploy(4, path_v2, canary);
    double canary_promote_ms = promote_watch.Seconds() * 1000.0;
    bool promote_ok = promote.ok() &&
                      promote->outcome ==
                          eos::serve::CanaryOutcome::kPromoted;

    // Script complete: run out the minimum load, then release the clients.
    while (completed.load() < *requests) std::this_thread::yield();
    stop.store(true, std::memory_order_release);
    for (auto& t : client_threads) t.join();
    (*fleet)->Shutdown();

    Cell cell;
    cell.shards = shards;
    cell.requests = completed.load();
    cell.seconds = watch.Seconds();
    cell.swap_ms = swap_ms;
    cell.recovery_ms = recovery_ms;
    cell.canary_abort_ms = canary_abort_ms;
    cell.canary_promote_ms = canary_promote_ms;
    cell.failed_requests = failed.load();
    cell.served_v1 = served_v1.load();
    cell.served_v2 = served_v2.load();
    cell.stats = (*fleet)->Stats();
    if (cell.failed_requests != 0 ||
        cell.stats.totals.dropped_on_drain != 0 || !healed || !abort_ok ||
        !promote_ok) {
      contract_violated = true;
    }
    cells.push_back(cell);
    std::printf(
        "  %-8lld %-10.0f %-10.2f %-10.2f %-10.2f %-10.2f %-10lld\n",
        static_cast<long long>(shards),
        static_cast<double>(cell.requests) / cell.seconds, swap_ms,
        recovery_ms, canary_abort_ms, canary_promote_ms,
        static_cast<long long>(cell.stats.totals.dropped_on_drain));
  }

  std::FILE* f = std::fopen(out->c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out->c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"fleet_throughput\", \"image_size\": %lld, "
               "\"classes\": %lld, \"clients\": %lld, \"workers\": %lld, "
               "\"batch\": %lld, \"results\": [\n",
               static_cast<long long>(*image_size),
               static_cast<long long>(*classes),
               static_cast<long long>(*clients),
               static_cast<long long>(*workers),
               static_cast<long long>(*batch));
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(f, "  %s%s\n", CellJson(cells[i]).c_str(),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", out->c_str(), cells.size());

  std::remove(path_v1.c_str());
  std::remove(path_v2.c_str());
  if (contract_violated) {
    std::fprintf(stderr,
                 "FAIL: zero-downtime contract violated (failed requests, "
                 "dropped_on_drain != 0, missed recovery, or a canary that "
                 "decided wrong)\n");
    return 1;
  }
  return 0;
}
