// Fleet chaos drill: a scripted kill / stall / bad-deploy schedule executed
// against a live serve::Fleet under closed-loop load, self-checking the
// whole self-healing story end to end. The script:
//
//   1. boot v1 (supervisor enabled), 64 closed-loop clients hammering
//   2. kill: poison one replica's session mid-traffic -> the supervisor
//      must witness the stuck breaker, reload the checkpoint, and splice a
//      fresh session in (recovery time recorded)
//   3. stall: a burst of worker stalls rides through on the watchdog-free
//      path (slow != dead; nothing may fail)
//   4. bad deploy A: a canary whose weights diverge from the incumbent on
//      a reference batch -> the probe aborts it BEFORE it serves any key
//   5. bad deploy B: a canary with healthy weights but a tripped guardrail
//      -> auto-abort after its first window; only canary-slice keys may
//      ever have been served by it
//   6. good deploy: a healthy canary passes its windows and promotes to a
//      full roll (promotion latency recorded)
//
// Exit is nonzero unless: zero terminally-failed client requests, zero
// bitwise mismatches against offline per-version references, zero
// dropped_on_drain fleet-wide, the supervisor really replaced a replica,
// the bad versions never touched a non-canary key, and the fleet ended
// fully on the promoted version.
//
// Run: ./build/bench/fleet_chaos
//      ./build/bench/fleet_chaos --clients=64 --target_requests=600

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "nn/resnet.h"
#include "serve/canary.h"
#include "serve/fleet.h"
#include "serve/supervisor.h"
#include "tensor/tensor_ops.h"
#include "testing/fault_injection.h"

namespace {

using eos::testing::FaultInjector;
using eos::testing::ScopedFault;

int64_t g_image_size = 8;

eos::nn::ImageClassifier BuildNet(uint64_t seed) {
  eos::Rng rng(seed);
  eos::nn::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = 4;
  return eos::nn::BuildResNet(config, rng);
}

eos::nn::ImageClassifier FactoryNet() { return BuildNet(0xC4405); }

std::shared_ptr<eos::serve::ModelSession> WriteCheckpoint(
    const std::string& path, uint64_t seed) {
  eos::nn::ImageClassifier net = BuildNet(seed);
  eos::Rng rng(seed + 1);
  eos::Tensor warmup = eos::Tensor::Uniform(
      {16, 3, g_image_size, g_image_size}, -1.0f, 1.0f, rng);
  net.Forward(warmup, /*training=*/true);
  eos::TrainCheckpoint ckpt;
  eos::Status status = eos::SaveCheckpoint(ckpt, net, path);
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint save failed: %s\n",
                 status.ToString().c_str());
    return nullptr;
  }
  auto session =
      eos::serve::ModelSession::LoadFromCheckpoint(FactoryNet(), path);
  if (!session.ok()) return nullptr;
  return std::move(session).value();
}

/// Thread-safe (key -> versions that served it) evidence log. The chaos
/// self-check reads it to prove the aborted canary never served a key
/// outside its deterministic slice.
struct VersionLog {
  std::mutex mu;
  std::map<uint64_t, std::set<int64_t>> versions_by_key GUARDED_BY(mu);
  void Record(uint64_t key, int64_t version) {
    std::lock_guard<std::mutex> lock(mu);
    versions_by_key[key].insert(version);
  }

  /// Copy for the post-join assertions (clients are stopped by then, but
  /// the lock keeps the access pattern analyzable).
  std::map<uint64_t, std::set<int64_t>> Snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return versions_by_key;
  }
};

struct CheckFailures {
  int count = 0;
  void Expect(bool ok, const char* what) {
    if (ok) return;
    ++count;
    std::fprintf(stderr, "SELF-CHECK FAILED: %s\n", what);
  }
};

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  int64_t* clients = flags.AddInt("clients", 64, "closed-loop client threads");
  int64_t* target = flags.AddInt(
      "target_requests", 600,
      "minimum completed requests before the script advances past phase 1");
  int64_t* image_size = flags.AddInt("image_size", 8, "image edge size");
  int64_t* seed = flags.AddInt("seed", 1, "rng seed");
  std::string* ckpt_prefix = flags.AddString(
      "ckpt", "/tmp/eos_fleet_chaos_ckpt", "scratch checkpoint prefix");
  std::string* out =
      flags.AddString("out", "BENCH_fleet_chaos.json", "JSON output path");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }
  g_image_size = *image_size;
  FaultInjector::Global().DisarmAll();

  // Two weight sets: W1 boots the fleet (and, re-registered under a new id,
  // plays the "healthy but guardrail-tripped" canary, so its predictions
  // are verifiable against the same reference); W2 plays both the diverging
  // bad deploy and the final promoted version. W2's seed is searched so the
  // divergence probe provably fires (>0 on the reference batch) — the
  // search is deterministic, so the whole drill is.
  std::string path_w1 = *ckpt_prefix + "_w1.eosc";
  std::string path_w2 = *ckpt_prefix + "_w2.eosc";
  auto ref_w1 = WriteCheckpoint(path_w1, static_cast<uint64_t>(*seed) + 10);
  if (ref_w1 == nullptr) return 1;
  eos::Rng probe_rng(static_cast<uint64_t>(*seed) + 3);
  eos::Tensor reference_batch = eos::Tensor::Uniform(
      {32, 3, g_image_size, g_image_size}, -1.0f, 1.0f, probe_rng);
  std::shared_ptr<eos::serve::ModelSession> ref_w2;
  double offline_divergence = 0.0;
  for (uint64_t attempt = 0; attempt < 16; ++attempt) {
    ref_w2 = WriteCheckpoint(path_w2,
                             static_cast<uint64_t>(*seed) + 20 + attempt);
    if (ref_w2 == nullptr) return 1;
    offline_divergence =
        eos::serve::PredictionDivergence(*ref_w1, *ref_w2, reference_batch);
    if (offline_divergence > 0.0) break;
  }
  if (offline_divergence == 0.0) {
    std::fprintf(stderr, "could not find diverging weights in 16 tries\n");
    return 1;
  }

  // Offline per-version references for the bitwise self-check. Version ids
  // follow the script: 1 = W1 (boot), 2 = W2 (divergence-aborted, must
  // never serve), 3 = W1 (guardrail-aborted canary), 4 = W2 (promoted).
  eos::Rng image_rng(static_cast<uint64_t>(*seed) + 2);
  std::vector<eos::Tensor> pool;
  std::vector<eos::serve::Prediction> expected_w1, expected_w2;
  for (int i = 0; i < 32; ++i) {
    pool.push_back(eos::Tensor::Uniform({3, g_image_size, g_image_size},
                                        -1.0f, 1.0f, image_rng));
    expected_w1.push_back(ref_w1->PredictOne(pool.back()));
    expected_w2.push_back(ref_w2->PredictOne(pool.back()));
  }
  std::map<int64_t, const std::vector<eos::serve::Prediction>*> expected = {
      {1, &expected_w1}, {3, &expected_w1}, {4, &expected_w2}};

  eos::serve::FleetOptions options;
  options.num_shards = 2;
  options.replicas_per_shard = 2;
  options.server.num_workers = 2;
  options.server.batcher.max_batch_size = 8;
  options.server.batcher.max_queue_delay_us = 200;
  options.server.health.breaker.cooldown_us = 5000;
  options.supervisor.enabled = true;
  options.supervisor.poll_interval_us = 1000;
  options.supervisor.unhealthy_polls = 1;
  options.supervisor.max_restarts = 3;
  auto fleet = eos::serve::Fleet::Create(FactoryNet, path_w1, options);
  if (!fleet.ok()) {
    std::fprintf(stderr, "fleet create failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }

  // Closed-loop clients: retry transient refusals forever (the drill's
  // claim is that a patient client NEVER terminally fails), verify every
  // answer bitwise against the offline reference of its stamped version,
  // and log (key, version) evidence.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> terminal_failures{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> unknown_version{0};
  VersionLog log;
  const uint64_t num_keys = 256;
  std::vector<std::thread> client_threads;
  for (int64_t c = 0; c < *clients; ++c) {
    client_threads.emplace_back([&, c] {
      uint64_t n = static_cast<uint64_t>(c);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t key = n % num_keys;
        size_t image_index = static_cast<size_t>(n % pool.size());
        eos::Result<eos::serve::Prediction> served =
            (*fleet)->Predict(key, pool[image_index].Clone());
        if (!served.ok()) {
          eos::StatusCode code = served.status().code();
          if (code == eos::StatusCode::kUnavailable ||
              code == eos::StatusCode::kResourceExhausted) {
            std::this_thread::yield();
            continue;  // transient: breaker cooldown or backpressure
          }
          if (code == eos::StatusCode::kFailedPrecondition) break;  // drained
          terminal_failures.fetch_add(1);
          std::fprintf(stderr, "terminal failure: %s\n",
                       served.status().ToString().c_str());
          continue;
        }
        auto it = expected.find(served->version);
        if (it == expected.end()) {
          unknown_version.fetch_add(1);
        } else {
          const eos::serve::Prediction& want = (*it->second)[image_index];
          if (served->label != want.label ||
              served->confidence != want.confidence) {
            mismatches.fetch_add(1);
          }
        }
        log.Record(key, served->version);
        completed.fetch_add(1);
        n += static_cast<uint64_t>(*clients);
      }
    });
  }

  // --- Phase 1: steady load until the kill point (~15% of target) -------
  while (completed.load() < *target * 15 / 100) std::this_thread::yield();

  // --- Phase 2: kill. Poison exactly one replica session; the supervisor
  // must replace it. Recovery time = poison armed -> splice witnessed.
  std::printf("phase 2: poisoning one replica...\n");
  eos::Stopwatch recovery_watch;
  double recovery_ms = -1.0;
  bool healed = false;
  {
    auto poison = ScopedFault::Failure(eos::serve::kReplicaPoisonFault, 1);
    healed = (*fleet)->supervisor()->WaitFor(
        [](const eos::serve::SupervisorSnapshot& s) {
          return s.replicas_replaced >= 1;
        },
        /*timeout_us=*/30000000);
    if (healed) recovery_ms = recovery_watch.Seconds() * 1000.0;
  }
  std::printf("  healed=%d recovery_ms=%.2f\n", healed ? 1 : 0, recovery_ms);

  // --- Phase 3: stall burst. Slow workers are not dead workers: traffic
  // keeps completing, nothing trips terminally.
  std::printf("phase 3: worker stall burst...\n");
  {
    auto stall =
        ScopedFault::Stall(eos::serve::kWorkerStallFault, 2000, /*count=*/4);
    eos::Stopwatch deadline;
    while (stall.fire_count() < 4 && deadline.Seconds() < 10.0) {
      std::this_thread::yield();
    }
  }
  int64_t stall_fires =
      FaultInjector::Global().total_fires(eos::serve::kWorkerStallFault);
  std::printf("  stall fires=%lld\n", static_cast<long long>(stall_fires));

  // --- Phase 4: bad deploy A — diverging weights. The probe must abort it
  // before a single key is served by version 2.
  std::printf("phase 4: diverging canary (must abort pre-traffic)...\n");
  eos::Stopwatch probe_watch;
  eos::serve::CanaryOptions bad_canary;
  bad_canary.keyspace_fraction = 0.5;
  bad_canary.min_requests_per_window = 8;
  bad_canary.evaluation_windows = 1;
  bad_canary.window_timeout_us = 15000000;
  bad_canary.max_divergence = 0.0;
  bad_canary.reference_batch = reference_batch;
  auto probe_report = (*fleet)->CanaryDeploy(2, path_w2, bad_canary);
  double probe_abort_ms = probe_watch.Seconds() * 1000.0;
  if (!probe_report.ok()) {
    std::fprintf(stderr, "canary 2 failed to start: %s\n",
                 probe_report.status().ToString().c_str());
    return 1;
  }
  std::printf("  outcome=%s divergence=%.4f (%.2fms): %s\n",
              probe_report->outcome == eos::serve::CanaryOutcome::kAborted
                  ? "aborted"
                  : "PROMOTED?!",
              probe_report->divergence, probe_abort_ms,
              probe_report->reason.c_str());

  // --- Phase 5: bad deploy B — healthy weights, tripped guardrail. Serves
  // its slice for one window, then must auto-abort.
  std::printf("phase 5: guardrail-tripped canary (must abort)...\n");
  eos::Stopwatch trip_watch;
  double trip_abort_ms = -1.0;
  eos::serve::CanaryOptions tripped_canary;
  tripped_canary.keyspace_fraction = 0.5;
  tripped_canary.min_requests_per_window = 16;
  tripped_canary.evaluation_windows = 3;
  tripped_canary.window_timeout_us = 15000000;
  eos::Result<eos::serve::CanaryReport> trip_report =
      eos::Status::FailedPrecondition("not run");
  {
    auto trip = ScopedFault::Failure(eos::serve::kCanaryGuardrailTrip, 1);
    trip_report = (*fleet)->CanaryDeploy(3, path_w1, tripped_canary);
    trip_abort_ms = trip_watch.Seconds() * 1000.0;
  }
  if (!trip_report.ok()) {
    std::fprintf(stderr, "canary 3 failed to start: %s\n",
                 trip_report.status().ToString().c_str());
    return 1;
  }
  std::printf("  outcome=%s (%.2fms): %s\n",
              trip_report->outcome == eos::serve::CanaryOutcome::kAborted
                  ? "aborted"
                  : "PROMOTED?!",
              trip_abort_ms, trip_report->reason.c_str());

  // --- Phase 6: good deploy — healthy canary promotes to a full roll.
  std::printf("phase 6: healthy canary (must promote)...\n");
  eos::Stopwatch promote_watch;
  eos::serve::CanaryOptions good_canary;
  good_canary.keyspace_fraction = 0.5;
  good_canary.min_requests_per_window = 16;
  good_canary.evaluation_windows = 2;
  good_canary.window_timeout_us = 15000000;
  auto promote_report = (*fleet)->CanaryDeploy(4, path_w2, good_canary);
  double promote_ms = promote_watch.Seconds() * 1000.0;
  if (!promote_report.ok()) {
    std::fprintf(stderr, "canary 4 failed to start: %s\n",
                 promote_report.status().ToString().c_str());
    return 1;
  }
  std::printf("  outcome=%s (%.2fms): %s\n",
              promote_report->outcome == eos::serve::CanaryOutcome::kPromoted
                  ? "promoted"
                  : "ABORTED?!",
              promote_ms, promote_report->reason.c_str());

  // Short tail of post-promotion traffic so version 4 is provably serving
  // the whole keyspace, then drain.
  int64_t tail_until = completed.load() + *clients;
  eos::Stopwatch tail_watch;
  while (completed.load() < tail_until && tail_watch.Seconds() < 10.0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : client_threads) t.join();
  (*fleet)->Shutdown();
  eos::serve::FleetSnapshot stats = (*fleet)->Stats();

  // --- The self-check: every claim in the drill's contract. -------------
  CheckFailures check;
  check.Expect(terminal_failures.load() == 0,
               "a closed-loop client failed terminally");
  check.Expect(mismatches.load() == 0,
               "a served prediction diverged bitwise from its version's "
               "offline reference");
  check.Expect(unknown_version.load() == 0,
               "a request was served by a version that must never serve "
               "(the divergence-aborted canary, or garbage)");
  check.Expect(completed.load() >= *target,
               "the drill finished under its minimum load");
  check.Expect(healed, "supervisor never replaced the poisoned replica");
  check.Expect(stats.supervisor.replicas_replaced >= 1 &&
                   stats.totals.replicas_replaced >= 1,
               "replica replacement not witnessed in fleet stats");
  check.Expect(
      FaultInjector::Global().total_fires(eos::serve::kReplicaPoisonFault) ==
          1,
      "poison fault did not fire exactly once");
  check.Expect(stall_fires >= 1, "worker stall burst never fired");
  check.Expect(
      FaultInjector::Global().total_fires(
          eos::serve::kCanaryGuardrailTrip) == 1,
      "guardrail-trip fault did not fire exactly once");
  check.Expect(probe_report->outcome == eos::serve::CanaryOutcome::kAborted &&
                   probe_report->divergence > 0.0 &&
                   probe_report->windows.empty(),
               "diverging canary was not aborted by the pre-traffic probe");
  check.Expect(trip_report->outcome == eos::serve::CanaryOutcome::kAborted,
               "guardrail-tripped canary was not aborted");
  check.Expect(
      promote_report->outcome == eos::serve::CanaryOutcome::kPromoted,
      "healthy canary did not promote");
  check.Expect(stats.active_version == 4,
               "fleet did not end on the promoted version");
  for (int s = 0; s < options.num_shards; ++s) {
    check.Expect((*fleet)->shard(s).active_version() == 4,
                 "a shard was left behind by the promotion roll");
  }
  check.Expect(stats.totals.dropped_on_drain == 0,
               "requests were dropped on drain");

  // The un-mix evidence: version 3 (the guardrail-aborted canary) may only
  // ever have served keys inside its deterministic slice; version 2 must
  // never appear at all (also covered by unknown_version above).
  uint64_t cutoff =
      eos::serve::CanaryCutoff(tripped_canary.keyspace_fraction);
  int64_t canary3_outside_slice = 0;
  int64_t version2_sightings = 0;
  for (const auto& [key, versions] : log.Snapshot()) {
    if (versions.count(2) != 0) ++version2_sightings;
    if (versions.count(3) != 0 && !eos::serve::IsCanaryKey(key, cutoff)) {
      ++canary3_outside_slice;
    }
  }
  check.Expect(version2_sightings == 0,
               "the divergence-aborted version served a key");
  check.Expect(canary3_outside_slice == 0,
               "the guardrail-aborted canary served a non-canary key");

  std::FILE* f = std::fopen(out->c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out->c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\"bench\": \"fleet_chaos\", \"clients\": %lld, "
      "\"completed\": %lld, \"terminal_failures\": %lld, "
      "\"mismatches\": %lld, \"recovery_ms\": %.2f, "
      "\"probe_abort_ms\": %.2f, \"trip_abort_ms\": %.2f, "
      "\"promote_ms\": %.2f, \"offline_divergence\": %.4f, "
      "\"replicas_replaced\": %lld, \"dropped_on_drain\": %lld, "
      "\"final_version\": %lld, \"self_check_failures\": %d}\n",
      static_cast<long long>(*clients),
      static_cast<long long>(completed.load()),
      static_cast<long long>(terminal_failures.load()),
      static_cast<long long>(mismatches.load()), recovery_ms, probe_abort_ms,
      trip_abort_ms, promote_ms, offline_divergence,
      static_cast<long long>(stats.totals.replicas_replaced),
      static_cast<long long>(stats.totals.dropped_on_drain),
      static_cast<long long>(stats.active_version), check.count);
  std::fclose(f);
  std::printf("\nwrote %s\n", out->c_str());

  std::remove(path_w1.c_str());
  std::remove(path_w2.c_str());
  if (check.count != 0) {
    std::fprintf(stderr, "FAIL: %d self-checks failed\n", check.count);
    return 1;
  }
  std::printf("PASS: %lld requests, 0 failed, recovery %.1fms, "
              "abort %.1fms, promote %.1fms\n",
              static_cast<long long>(completed.load()), recovery_ms,
              trip_abort_ms, promote_ms);
  return 0;
}
