// Reproduces §V-E2 (model run time): wall-clock cost of front-end
// (pre-processing) augmentation — a full CNN trained end-to-end on a
// pixel-balanced set — versus the three-phase EOS pipeline (one CNN trained
// on the *imbalanced* set plus a head retrain on embeddings).
//
// Expected shape (paper): pre-processing costs ~3x EOS (126.9 vs 43.9
// minutes there). The ratio comes from (1) the balanced set being several
// times larger than the imbalanced one, (2) the head retrain touching <1K
// parameters for 10 epochs, and (3) augmentation running on 64-d embeddings
// instead of pixels — all of which survive rescaling.

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "core/three_phase.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.datasets = "cifar10";  // bench-local default
  bench::HandleParse(flags.Parse(argc, argv), flags);

  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(StrFormat("Runtime: %s (CE loss)",
                                 DatasetKindName(dataset)));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;

    // Front-end augmentation: average over the three pre-processing
    // methods, as the paper does.
    double pre_total = 0.0;
    int pre_count = 0;
    for (SamplerKind kind :
         {SamplerKind::kSmote, SamplerKind::kBorderlineSmote,
          SamplerKind::kBalancedSvm}) {
      SamplerConfig sampler_config;
      sampler_config.kind = kind;
      sampler_config.k_neighbors = 5;
      auto sampler = MakeOversampler(sampler_config);
      EvalOutputs out = RunPixelSpacePipeline(config, *sampler);
      std::printf("  Pre-%-10s %7.1fs  (BAC %s)\n", SamplerKindName(kind),
                  out.seconds, FormatMetric(out.metrics.bac).c_str());
      pre_total += out.seconds;
      ++pre_count;
    }
    double pre_mean = pre_total / pre_count;

    // Three-phase EOS: phase-1 training + resample + head retrain.
    Stopwatch watch;
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    watch.Reset();
    pipeline.TrainPhase1();
    double phase1_seconds = watch.Seconds();
    SamplerConfig eos_config;
    eos_config.kind = SamplerKind::kEos;
    eos_config.k_neighbors = *common.k_neighbors;
    EvalOutputs eos_out = pipeline.RunSampler(eos_config);
    double eos_total = phase1_seconds + eos_out.seconds;
    std::printf("  EOS three-phase %6.1fs  = phase-1 %.1fs + resample/"
                "retrain %.2fs  (BAC %s)\n",
                eos_total, phase1_seconds, eos_out.seconds,
                FormatMetric(eos_out.metrics.bac).c_str());
    std::printf("  head parameters retrained: %lld of %lld total\n",
                static_cast<long long>(pipeline.net().head->NumParameters()),
                static_cast<long long>(pipeline.net().NumParameters()));
    std::printf("\n  pre-processing / EOS wall-clock ratio: %.2fx "
                "(paper: ~2.9x)\n",
                pre_mean / eos_total);
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
