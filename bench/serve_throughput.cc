// Serving performance: latency and throughput of serve::Server as a
// function of micro-batch size and worker/replica count. Uses an untrained
// (warmed-up) snapshot — serving cost does not depend on the weight values —
// and closed-loop clients. Each cell reports wall-clock throughput and the
// latency percentiles from serve::ServeStats, and the whole sweep lands in
// a JSON file (default BENCH_serve.json) for the perf trajectory.
//
// Run: ./build/bench/serve_throughput
//      ./build/bench/serve_throughput --batch_sizes=1,8,64 --workers_list=1,4

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "nn/resnet.h"
#include "nn/serialize.h"
#include "serve/server.h"
#include "tensor/tensor_ops.h"

namespace {

std::vector<int64_t> ParseIntList(const std::string& spec) {
  std::vector<int64_t> out;
  for (const std::string& raw : eos::StrSplit(spec, ',')) {
    std::string name = eos::StrTrim(raw);
    if (!name.empty()) out.push_back(std::stoll(name));
  }
  return out;
}

eos::nn::ImageClassifier BuildNet(uint64_t seed, int64_t num_classes) {
  eos::Rng rng(seed);
  eos::nn::ResNetConfig config;
  config.blocks_per_stage = 1;
  config.base_width = 8;
  config.num_classes = num_classes;
  return eos::nn::BuildResNet(config, rng);
}

struct Cell {
  int64_t workers = 0;
  int64_t batch_size = 0;
  int64_t requests = 0;
  double seconds = 0;
  eos::serve::StatsSnapshot stats;
};

std::string CellJson(const Cell& c) {
  return eos::StrFormat(
      "{\"workers\": %lld, \"max_batch_size\": %lld, \"requests\": %lld, "
      "\"seconds\": %.4f, \"rps\": %.1f, \"mean_batch_size\": %.3f, "
      "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
      "\"max_queue_depth\": %lld, \"shed\": %lld, \"deadline_expired\": %lld, "
      "\"replica_failures\": %lld, \"retries\": %lld}",
      static_cast<long long>(c.workers), static_cast<long long>(c.batch_size),
      static_cast<long long>(c.requests), c.seconds,
      static_cast<double>(c.requests) / c.seconds, c.stats.mean_batch_size,
      c.stats.p50_us, c.stats.p95_us, c.stats.p99_us,
      static_cast<long long>(c.stats.max_queue_depth),
      static_cast<long long>(c.stats.shed),
      static_cast<long long>(c.stats.deadline_expired),
      static_cast<long long>(c.stats.replica_failures),
      static_cast<long long>(c.stats.retries));
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  int64_t* image_size = flags.AddInt("image_size", 10, "image edge size");
  int64_t* classes = flags.AddInt("classes", 10, "number of classes");
  int64_t* requests = flags.AddInt("requests", 512, "requests per cell");
  // Enough closed-loop clients to keep >= 32 requests outstanding: with
  // fewer clients than 2x the largest batch size, big-batch cells can never
  // fill a batch and spend every dispatch waiting out the delay budget —
  // the bench would measure the timeout, not the server.
  int64_t* clients = flags.AddInt("clients", 64, "closed-loop client threads");
  int64_t* delay_us =
      flags.AddInt("delay_us", 1000, "max queue delay per request (us)");
  int64_t* depth = flags.AddInt("depth", 1024, "queue depth (backpressure)");
  int64_t* timeout_us = flags.AddInt(
      "timeout_us", 0, "per-request deadline budget (us, 0 = none)");
  int64_t* seed = flags.AddInt("seed", 1, "rng seed");
  std::string* batch_sizes =
      flags.AddString("batch_sizes", "1,4,16,32", "micro-batch size sweep");
  std::string* workers_list =
      flags.AddString("workers_list", "1,2,4", "worker/replica count sweep");
  std::string* weights = flags.AddString(
      "weights", "/tmp/eos_serve_bench_model", "scratch snapshot prefix");
  std::string* out =
      flags.AddString("out", "BENCH_serve.json", "JSON output path");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  // A warmed-up snapshot (training-mode forward moves the BN statistics so
  // eval mode exercises the realistic code path).
  {
    eos::nn::ImageClassifier net =
        BuildNet(static_cast<uint64_t>(*seed), *classes);
    eos::Rng rng(static_cast<uint64_t>(*seed) + 1);
    eos::Tensor warmup = eos::Tensor::Uniform(
        {16, 3, *image_size, *image_size}, -1.0f, 1.0f, rng);
    net.Forward(warmup, /*training=*/true);
    eos::Status save_status = eos::nn::SaveClassifier(net, *weights);
    if (!save_status.ok()) {
      std::fprintf(stderr, "save failed: %s\n",
                   save_status.ToString().c_str());
      return 1;
    }
  }

  eos::Rng image_rng(static_cast<uint64_t>(*seed) + 2);
  std::vector<eos::Tensor> pool;
  for (int i = 0; i < 64; ++i) {
    pool.push_back(eos::Tensor::Uniform({3, *image_size, *image_size}, -1.0f,
                                        1.0f, image_rng));
  }

  std::printf("serve_throughput: %lld requests/cell, %lld clients, "
              "delay %lld us\n\n",
              static_cast<long long>(*requests),
              static_cast<long long>(*clients),
              static_cast<long long>(*delay_us));
  std::printf("  %-8s %-10s %-10s %-12s %-10s %-10s %-10s\n", "workers",
              "max_batch", "req/s", "mean_batch", "p50_us", "p95_us",
              "p99_us");

  std::vector<Cell> cells;
  for (int64_t workers : ParseIntList(*workers_list)) {
    // One session replica per worker: forwards run concurrently.
    std::vector<std::shared_ptr<eos::serve::ModelSession>> replicas;
    for (int64_t r = 0; r < workers; ++r) {
      auto session = eos::serve::ModelSession::Load(
          BuildNet(static_cast<uint64_t>(*seed) + 50 + static_cast<uint64_t>(r),
                   *classes),
          *weights);
      if (!session.ok()) {
        std::fprintf(stderr, "load failed: %s\n",
                     session.status().ToString().c_str());
        return 1;
      }
      replicas.push_back(std::move(session).value());
    }
    for (int64_t batch_size : ParseIntList(*batch_sizes)) {
      eos::serve::ServerOptions options;
      options.num_workers = static_cast<int>(workers);
      options.batcher.max_batch_size = batch_size;
      options.batcher.max_queue_delay_us = *delay_us;
      options.batcher.max_queue_depth = *depth;
      eos::serve::Server server(replicas, options);

      eos::serve::SubmitOptions submit_options;
      submit_options.timeout_us = *timeout_us;

      eos::Stopwatch watch;
      std::vector<std::thread> client_threads;
      for (int64_t c = 0; c < *clients; ++c) {
        client_threads.emplace_back([&, c] {
          for (int64_t i = c; i < *requests; i += *clients) {
            const eos::Tensor& image =
                pool[static_cast<size_t>(i) % pool.size()];
            for (;;) {
              auto f = server.Submit(image, submit_options);
              if (f.ok()) {
                // Wait for completion; the terminal status (DeadlineExceeded
                // under --timeout_us) is dropped because the per-cell stats
                // counters already aggregate every outcome.
                (void)std::move(f).value().get();  // outcome counted in stats
                break;
              }
              std::this_thread::yield();  // backpressure: retry
            }
          }
        });
      }
      for (auto& t : client_threads) t.join();
      server.Shutdown();

      Cell cell;
      cell.workers = workers;
      cell.batch_size = batch_size;
      cell.requests = *requests;
      cell.seconds = watch.Seconds();
      cell.stats = server.Stats();
      cells.push_back(cell);
      std::printf("  %-8lld %-10lld %-10.0f %-12.2f %-10.0f %-10.0f %-10.0f\n",
                  static_cast<long long>(workers),
                  static_cast<long long>(batch_size),
                  static_cast<double>(cell.requests) / cell.seconds,
                  cell.stats.mean_batch_size, cell.stats.p50_us,
                  cell.stats.p95_us, cell.stats.p99_us);
    }
  }

  std::FILE* f = std::fopen(out->c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out->c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"serve_throughput\", \"image_size\": %lld, "
               "\"classes\": %lld, \"clients\": %lld, \"delay_us\": %lld, "
               "\"results\": [\n",
               static_cast<long long>(*image_size),
               static_cast<long long>(*classes),
               static_cast<long long>(*clients),
               static_cast<long long>(*delay_us));
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(f, "  %s%s\n", CellJson(cells[i]).c_str(),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu cells)\n", out->c_str(), cells.size());
  return 0;
}
