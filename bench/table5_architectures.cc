// Reproduces Table V: EOS on different CNN architectures (CIFAR10-like).
// The paper compares ResNet-56, WideResNet, and DenseNet with and without
// EOS classifier retraining; here each family runs at laptop depth
// (ResNet-14 stands in for ResNet-56 — deeper than the default ResNet-8 —
// plus a WRN and a DenseNet of comparable scale).
//
// Expected shape (paper): EOS improves every architecture; the wider nets
// benefit the most.

#include "bench/bench_common.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Table V: different CNN architectures with & without EOS "
              "(CIFAR10-like; BAC GM FM)\n\n");

  struct ArchSpec {
    const char* label;
    ArchKind kind;
    int64_t blocks;
  };
  // WRN trains for fewer epochs, mirroring the paper's early-overfitting
  // note for its 5x parameter count.
  const ArchSpec kSpecs[] = {
      {"ResNet-14", ArchKind::kResNet, 2},
      {"WideResNet", ArchKind::kWideResNet, 1},
      {"DenseNet", ArchKind::kDenseNet, 2},
  };

  int improved = 0;
  for (const ArchSpec& spec : kSpecs) {
    ExperimentConfig config =
        bench::MakeConfig(DatasetKind::kCifar10Like, common);
    config.loss.kind = LossKind::kCrossEntropy;
    config.arch = spec.kind;
    config.blocks_per_stage = spec.blocks;
    if (spec.kind == ArchKind::kWideResNet) {
      config.wrn_widen_factor = 2;
      config.phase1.epochs = config.phase1.epochs / 2;
    }
    if (spec.kind == ArchKind::kDenseNet) {
      config.densenet_layers_per_block = 2;
      config.densenet_growth = 8;
    }

    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();
    std::printf(" %s (%lld parameters):\n", spec.label,
                static_cast<long long>(pipeline.net().NumParameters()));
    EvalOutputs baseline = pipeline.EvaluateBaseline();
    bench::PrintRow("baseline", baseline.metrics);
    SamplerConfig eos_config;
    eos_config.kind = SamplerKind::kEos;
    eos_config.k_neighbors = *common.k_neighbors;
    EvalOutputs eos_out = pipeline.RunSampler(eos_config);
    bench::PrintRow("EOS", eos_out.metrics);
    std::printf("  delta BAC: %+0.4f\n\n",
                eos_out.metrics.bac - baseline.metrics.bac);
    if (eos_out.metrics.bac > baseline.metrics.bac) ++improved;
  }
  std::printf("Summary: EOS improved %d/3 architectures (paper: 3/3)\n",
              improved);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
