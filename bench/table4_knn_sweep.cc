// Reproduces Table IV: EOS nearest-neighbor size analysis. One extractor
// per dataset (CE loss), then EOS head-retrains with
// K in {10, 50, 100, 200, 300}.
//
// Expected shape (paper): BAC improves as K grows and plateaus by K≈300 —
// a larger adversary neighborhood admits a more diverse set of expansion
// directions. (K is clamped to the training-set size when it exceeds it.)

#include "bench/bench_common.h"
#include "sampling/eos.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Table IV: EOS nearest-neighbor size analysis (CE loss; "
              "BAC GM FM)\n");

  constexpr int64_t kSweep[] = {10, 50, 100, 200, 300};
  int monotone_improvements = 0;
  int datasets_run = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(DatasetKindName(dataset));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();

    double first_bac = 0.0;
    double best_bac = 0.0;
    int64_t best_k = 0;
    for (int64_t k : kSweep) {
      ExpansiveOversampler sampler(k);
      EvalOutputs out = pipeline.RunSampler(sampler);
      bench::PrintRow(StrFormat("K=%lld", static_cast<long long>(k)),
                      out.metrics);
      if (k == kSweep[0]) first_bac = out.metrics.bac;
      if (out.metrics.bac > best_bac) {
        best_bac = out.metrics.bac;
        best_k = k;
      }
    }
    std::printf("  best K=%lld (BAC %+0.4f vs K=10)\n",
                static_cast<long long>(best_k), best_bac - first_bac);
    ++datasets_run;
    if (best_k > kSweep[0]) ++monotone_improvements;
  }
  std::printf("\nSummary: larger K improved BAC on %d/%d datasets "
              "(paper: all, plateauing near K=300)\n",
              monotone_improvements, datasets_run);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
