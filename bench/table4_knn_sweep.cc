// Reproduces Table IV: EOS nearest-neighbor size analysis. One extractor
// per dataset (CE loss), then EOS head-retrains with
// K in {10, 50, 100, 200, 300}.
//
// Expected shape (paper): BAC improves as K grows and plateaus by K≈300 —
// a larger adversary neighborhood admits a more diverse set of expansion
// directions. (K is clamped to the training-set size when it exceeds it.)
//
// The sweep routes its neighbor searches through the ml/knn_index.h
// selection policy; --knn forces a backend (brute | index | auto |
// approx[:<leaves>]) for A/B timing, and --out lands the per-K metrics and
// resample wall time in a JSON file.

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "ml/knn_index.h"
#include "sampling/eos.h"

namespace eos {
namespace {

struct SweepRow {
  std::string dataset;
  int64_t k = 0;
  double bac = 0;
  double gmean = 0;
  double f1 = 0;
  double run_ms = 0;
};

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  std::string* knn_spec = flags.AddString(
      "knn", "auto", "KNN backend: auto|brute|index|approx[:<leaves>]");
  std::string* out =
      flags.AddString("out", "", "JSON output path (empty = no JSON)");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  KnnMode knn_mode = KnnMode::kAuto;
  int64_t knn_budget = 0;
  if (!ParseKnnMode(*knn_spec, &knn_mode, &knn_budget)) {
    std::fprintf(stderr, "bad --knn=%s (want auto|brute|index|approx[:n])\n",
                 knn_spec->c_str());
    return 2;
  }
  ScopedForceKnnMode force(knn_mode, knn_budget);

  std::printf("Table IV: EOS nearest-neighbor size analysis (CE loss; "
              "BAC GM FM; knn=%s)\n",
              knn_spec->c_str());

  constexpr int64_t kSweep[] = {10, 50, 100, 200, 300};
  std::vector<SweepRow> rows;
  int monotone_improvements = 0;
  int datasets_run = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(DatasetKindName(dataset));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();

    double first_bac = 0.0;
    double best_bac = 0.0;
    int64_t best_k = 0;
    for (int64_t k : kSweep) {
      ExpansiveOversampler sampler(k);
      Stopwatch watch;
      EvalOutputs out_eval = pipeline.RunSampler(sampler);
      SweepRow row;
      row.dataset = DatasetKindName(dataset);
      row.k = k;
      row.bac = out_eval.metrics.bac;
      row.gmean = out_eval.metrics.gmean;
      row.f1 = out_eval.metrics.f1;
      row.run_ms = watch.Milliseconds();
      rows.push_back(row);
      bench::PrintRow(StrFormat("K=%lld", static_cast<long long>(k)),
                      out_eval.metrics);
      if (k == kSweep[0]) first_bac = out_eval.metrics.bac;
      if (out_eval.metrics.bac > best_bac) {
        best_bac = out_eval.metrics.bac;
        best_k = k;
      }
    }
    std::printf("  best K=%lld (BAC %+0.4f vs K=10)\n",
                static_cast<long long>(best_k), best_bac - first_bac);
    ++datasets_run;
    if (best_k > kSweep[0]) ++monotone_improvements;
  }
  std::printf("\nSummary: larger K improved BAC on %d/%d datasets "
              "(paper: all, plateauing near K=300)\n",
              monotone_improvements, datasets_run);

  if (!out->empty()) {
    std::FILE* f = std::fopen(out->c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out->c_str());
      return 1;
    }
    std::fprintf(f, "{\"bench\": \"table4_knn_sweep\", \"knn\": \"%s\", "
                 "\"rows\": [\n", knn_spec->c_str());
    for (size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(f,
                   "  {\"dataset\": \"%s\", \"k\": %lld, \"bac\": %.4f, "
                   "\"gmean\": %.4f, \"f1\": %.4f, \"run_ms\": %.1f}%s\n",
                   r.dataset.c_str(), static_cast<long long>(r.k), r.bac,
                   r.gmean, r.f1, r.run_ms,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", out->c_str(), rows.size());
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
