// Reproduces Table I: over-sampling as pixel-space pre-processing (train a
// fresh CNN on the balanced images) vs. the same algorithm applied to
// feature embeddings with classifier retraining ("post"). Cross-entropy
// loss throughout, as in the paper. Also covers §V-E3 (EOS in pixel space).
//
// Expected shape (paper): the post (embedding-space) variant wins most
// dataset x sampler cells (7/9 in the paper), and pixel-space EOS trails
// embedding-space EOS by a wide margin.

#include "bench/bench_common.h"
#include "sampling/eos.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  // Bench-local default: each pre-processing cell trains a full CNN on the
  // *balanced* (several-times-larger) pixel set, so this is by far the most
  // expensive harness. 0.7x scale keeps the default run tractable; pass
  // --scale=1 for the regular scale.
  *common.scale = 0.7;
  bool* include_eos_pixel = flags.AddBool(
      "include_eos_pixel", true, "also run EOS as pre-processing (§V-E3)");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Table I: Pre-Processing vs Feature-Embedding-Space "
              "Over-Sampling (CE loss; BAC GM FM)\n");

  int post_wins = 0;
  int comparisons = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(DatasetKindName(dataset));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;

    // Pre-processing rows: balance pixels, train end-to-end.
    std::vector<std::pair<std::string, double>> pre_bac;
    for (SamplerKind kind :
         {SamplerKind::kSmote, SamplerKind::kBorderlineSmote,
          SamplerKind::kBalancedSvm, SamplerKind::kRemix}) {
      SamplerConfig sampler_config;
      sampler_config.kind = kind;
      sampler_config.k_neighbors = 5;
      auto sampler = MakeOversampler(sampler_config);
      EvalOutputs out = RunPixelSpacePipeline(config, *sampler);
      bench::PrintRow(std::string("Pre-") + SamplerKindName(kind),
                      out.metrics);
      pre_bac.emplace_back(SamplerKindName(kind), out.metrics.bac);
    }
    if (*include_eos_pixel) {
      ExpansiveOversampler eos_pixel(*common.k_neighbors);
      EvalOutputs out = RunPixelSpacePipeline(config, eos_pixel);
      bench::PrintRow("Pre-EOS", out.metrics);
      pre_bac.emplace_back("EOS", out.metrics.bac);
    }

    // Post rows: one shared extractor, per-sampler head retrains.
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();
    auto run_post = [&](SamplerKind kind, int64_t k) {
      SamplerConfig sampler;
      sampler.kind = kind;
      sampler.k_neighbors = k;
      EvalOutputs out = pipeline.RunSampler(sampler);
      bench::PrintRow(std::string("Post-") + SamplerKindName(kind),
                      out.metrics);
      return out.metrics.bac;
    };
    std::vector<std::pair<std::string, double>> post_bac;
    post_bac.emplace_back("SMOTE", run_post(SamplerKind::kSmote, 5));
    post_bac.emplace_back("B-SMOTE",
                          run_post(SamplerKind::kBorderlineSmote, 5));
    post_bac.emplace_back("Bal-SVM", run_post(SamplerKind::kBalancedSvm, 5));
    if (*include_eos_pixel) {
      post_bac.emplace_back("EOS",
                            run_post(SamplerKind::kEos, *common.k_neighbors));
    }

    for (const auto& [name, post] : post_bac) {
      for (const auto& [pre_name, pre] : pre_bac) {
        if (pre_name != name) continue;
        ++comparisons;
        if (post > pre) ++post_wins;
        std::printf("  %-8s post-pre delta: %+0.4f\n", name.c_str(),
                    post - pre);
      }
    }
  }
  std::printf("\nSummary: post (FE-space) beats pre (pixel-space) in %d/%d "
              "matched cells (paper: 7/9)\n",
              post_wins, comparisons);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
