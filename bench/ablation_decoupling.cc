// Ablation (ours): EOS against the Decoupling-style phase-3 alternatives
// from the paper's related work (Kang et al. 2020) that re-balance the
// classifier *without synthesizing data*:
//
//   cRT       — head retrained on the original embeddings with
//               class-balanced batches (minority rows repeat)
//   tau-norm  — no retraining; head rows rescaled by 1/||w_c||^tau
//
// This isolates how much of EOS's benefit is mere class re-weighting (which
// cRT/tau-norm capture) vs genuine range expansion (which only EOS adds —
// watch the gap column: cRT and tau-norm cannot move it at all).

#include "bench/bench_common.h"
#include "core/decoupling.h"
#include "metrics/weight_norms.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.datasets = "cifar10,svhn";  // bench-local default
  bench::HandleParse(flags.Parse(argc, argv), flags);

  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(StrFormat("Decoupling ablation: %s (CE)",
                                 DatasetKindName(dataset)));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();

    std::printf("  %-12s %6s %6s %6s %7s %9s\n", "method", "BAC", "GM",
                "FM", "gap", "norm max/min");
    auto print_line = [&](const std::string& label, const EvalOutputs& out) {
      std::printf("  %-12s %s %7.2f %9.2f\n", label.c_str(),
                  bench::MetricCells(out.metrics).c_str(), out.gap.mean,
                  WeightNormRatio(out.weight_norms));
    };
    EvalOutputs baseline = pipeline.EvaluateBaseline();
    print_line("baseline", baseline);

    // cRT: balanced batches over the original embeddings.
    {
      auto phase1 = SaveHeadState(pipeline.net());
      Rng rng(config.seed + 11);
      RetrainHeadClassBalanced(pipeline.net(), pipeline.train_embeddings(),
                               config.head, rng);
      // Evaluate via the pipeline's cached test embeddings.
      Tensor logits = pipeline.net().head->Forward(
          pipeline.test_embeddings().features, false);
      ConfusionMatrix confusion(pipeline.test().num_classes);
      confusion.AddAll(pipeline.test().labels, ArgMaxRows(logits));
      EvalOutputs crt;
      crt.metrics = ComputeSkewMetrics(confusion);
      crt.gap = GeneralizationGap(pipeline.train_embeddings(),
                                  pipeline.test_embeddings());
      crt.weight_norms = baseline.weight_norms;  // replaced below
      if (auto* linear =
              dynamic_cast<nn::Linear*>(pipeline.net().head.get())) {
        crt.weight_norms = ClassifierWeightNorms(linear->weight().value);
      }
      print_line("cRT", crt);
      RestoreHeadState(pipeline.net(), phase1);
    }

    // tau-normalization sweep (no retraining at all).
    for (double tau : {0.5, 1.0}) {
      auto phase1 = SaveHeadState(pipeline.net());
      TauNormalizeHead(pipeline.net(), tau);
      Tensor logits = pipeline.net().head->Forward(
          pipeline.test_embeddings().features, false);
      ConfusionMatrix confusion(pipeline.test().num_classes);
      confusion.AddAll(pipeline.test().labels, ArgMaxRows(logits));
      EvalOutputs tn;
      tn.metrics = ComputeSkewMetrics(confusion);
      tn.gap = GeneralizationGap(pipeline.train_embeddings(),
                                 pipeline.test_embeddings());
      if (auto* linear =
              dynamic_cast<nn::Linear*>(pipeline.net().head.get())) {
        tn.weight_norms = ClassifierWeightNorms(linear->weight().value);
      }
      print_line(StrFormat("tau=%.1f", tau), tn);
      RestoreHeadState(pipeline.net(), phase1);
    }

    SamplerConfig eos_config;
    eos_config.kind = SamplerKind::kEos;
    eos_config.k_neighbors = *common.k_neighbors;
    EvalOutputs eos_out = pipeline.RunSampler(eos_config);
    print_line("EOS", eos_out);
    std::printf("\n  note: cRT / tau-norm leave the gap at the baseline "
                "value — only synthesis can expand feature ranges.\n");
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
