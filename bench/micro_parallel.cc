// Micro-benchmarks (google-benchmark) for the src/runtime/ parallel
// subsystem: GEMM, conv forward/backward, and batched kNN throughput as a
// function of thread count (1/2/4/8), so the runtime's speedup is measured,
// not asserted. Each benchmark pins the lane count via SetThreadCount; the
// reported Gemm/256/threads:4 vs threads:1 ratio is the headline number.
//
// Run: ./micro_parallel [--benchmark_filter=...]. EOS_THREADS does not
// apply here (the benchmarks override it); it does apply to every other
// binary in the repo.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/knn.h"
#include "nn/conv2d.h"
#include "runtime/thread_pool.h"
#include "tensor/matmul.h"

namespace eos {
namespace {

void BM_GemmThreads(benchmark::State& state) {
  runtime::SetThreadCount(static_cast<int>(state.range(1)));
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmThreads)
    ->UseRealTime()
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8})
    ->Args({512, 1})
    ->Args({512, 4});

void BM_GemmTNDeepK(benchmark::State& state) {
  // Classifier-head weight-gradient shape: small m, deep k — exercises the
  // k-partitioned tile path.
  runtime::SetThreadCount(static_cast<int>(state.range(0)));
  Rng rng(2);
  int64_t k = 4096, m = 10, n = 64;
  Tensor a = Tensor::Uniform({k, m}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({k, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulTN(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_GemmTNDeepK)
    ->UseRealTime()
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ConvForwardThreads(benchmark::State& state) {
  runtime::SetThreadCount(static_cast<int>(state.range(0)));
  Rng rng(3);
  nn::Conv2d conv(/*in=*/16, /*out=*/32, /*kernel=*/3, /*stride=*/1,
                  /*pad=*/1, /*bias=*/false, rng);
  Tensor x = Tensor::Uniform({16, 16, 32, 32}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, /*training=*/false));
  }
  state.SetItemsProcessed(state.iterations() * x.size(0));
}
BENCHMARK(BM_ConvForwardThreads)
    ->UseRealTime()
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_ConvBackwardThreads(benchmark::State& state) {
  runtime::SetThreadCount(static_cast<int>(state.range(0)));
  Rng rng(4);
  nn::Conv2d conv(/*in=*/16, /*out=*/32, /*kernel=*/3, /*stride=*/1,
                  /*pad=*/1, /*bias=*/true, rng);
  Tensor x = Tensor::Uniform({16, 16, 32, 32}, -1.0f, 1.0f, rng);
  Tensor y = conv.Forward(x, /*training=*/true);
  Tensor dy = Tensor::Uniform(y.shape(), -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(dy));
  }
  state.SetItemsProcessed(state.iterations() * x.size(0));
}
BENCHMARK(BM_ConvBackwardThreads)
    ->UseRealTime()
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_KnnQueryRowsThreads(benchmark::State& state) {
  // The EOS/SMOTE/ADASYN neighborhood scan: leave-one-out queries for every
  // point of a minority class against the full embedding set.
  runtime::SetThreadCount(static_cast<int>(state.range(0)));
  Rng rng(5);
  Tensor points = Tensor::Uniform({4000, 64}, -1.0f, 1.0f, rng);
  KnnIndex index(points);
  std::vector<int64_t> rows(500);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = static_cast<int64_t>(i) * 7 % 4000;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.QueryRows(rows, 10));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_KnnQueryRowsThreads)
    ->UseRealTime()
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

}  // namespace
}  // namespace eos

BENCHMARK_MAIN();
