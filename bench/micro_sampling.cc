// Micro-benchmarks (google-benchmark): throughput of the over-samplers and
// the kNN substrate at embedding scale. These quantify the "lightweight
// instance generation" claim — EOS costs one kNN pass plus vector blends,
// no model induction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/knn.h"
#include "sampling/adasyn.h"
#include "sampling/borderline_smote.h"
#include "sampling/eos.h"
#include "sampling/smote.h"

namespace eos {
namespace {

FeatureSet MakeEmbeddings(int64_t n, int64_t dim, int64_t num_classes) {
  Rng rng(42);
  FeatureSet out;
  out.num_classes = num_classes;
  out.features = Tensor({n, dim});
  for (int64_t i = 0; i < n; ++i) {
    // Exponentially imbalanced labels.
    int64_t c = 0;
    while (c + 1 < num_classes && rng.Bernoulli(0.45)) ++c;
    for (int64_t j = 0; j < dim; ++j) {
      out.features.at(i, j) = rng.Normal(static_cast<float>(c), 1.0f);
    }
    out.labels.push_back(c);
  }
  // Ensure every class has at least one row.
  for (int64_t c = 0; c < num_classes; ++c) {
    out.labels[static_cast<size_t>(c)] = c;
  }
  return out;
}

void BM_KnnQuery(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(state.range(0), 64, 10);
  KnnIndex index(data.features);
  int64_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.QueryRow(row, 10));
    row = (row + 1) % index.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KnnQuery)->Arg(500)->Arg(2000);

void BM_Smote(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(state.range(0), 64, 10);
  Smote sampler(5);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(sampler.Resample(data, rng));
  }
}
BENCHMARK(BM_Smote)->Arg(500)->Arg(2000);

void BM_BorderlineSmote(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(state.range(0), 64, 10);
  BorderlineSmote sampler(5);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(sampler.Resample(data, rng));
  }
}
BENCHMARK(BM_BorderlineSmote)->Arg(500)->Arg(2000);

void BM_Adasyn(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(state.range(0), 64, 10);
  Adasyn sampler(5);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(sampler.Resample(data, rng));
  }
}
BENCHMARK(BM_Adasyn)->Arg(500)->Arg(2000);

void BM_Eos(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(state.range(0), 64, 10);
  ExpansiveOversampler sampler(10);
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(sampler.Resample(data, rng));
  }
}
BENCHMARK(BM_Eos)->Arg(500)->Arg(2000);

void BM_EosLargeK(benchmark::State& state) {
  FeatureSet data = MakeEmbeddings(2000, 64, 10);
  ExpansiveOversampler sampler(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    benchmark::DoNotOptimize(sampler.Resample(data, rng));
  }
}
BENCHMARK(BM_EosLargeK)->Arg(10)->Arg(100)->Arg(300);

}  // namespace
}  // namespace eos

BENCHMARK_MAIN();
