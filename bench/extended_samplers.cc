// Extension bench (ours): the full sampler zoo in embedding space — the
// paper's four methods plus the library's extras (random duplication,
// ADASYN, Remix-on-embeddings, k-means SMOTE, RBO, SMOTE-ENN, SMOTE-Tomek)
// — one shared phase-1 extractor per dataset, CE loss. Useful both as a
// broader context for Table II and as an integration smoke test of every
// sampler on real CNN embeddings.

#include "bench/bench_common.h"
#include "gan/deep_smote.h"
#include "sampling/undersampling.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.datasets = "cifar10,svhn";  // bench-local default
  bench::HandleParse(flags.Parse(argc, argv), flags);

  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(StrFormat("Extended sampler comparison: %s (CE)",
                                 DatasetKindName(dataset)));
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();

    std::printf("  %-12s %6s %6s %6s %8s %8s\n", "method", "BAC", "GM",
                "FM", "gap", "seconds");
    auto print_line = [](const std::string& label, const EvalOutputs& out) {
      std::printf("  %-12s %s %8.2f %8.3f\n", label.c_str(),
                  bench::MetricCells(out.metrics).c_str(), out.gap.mean,
                  out.seconds);
    };
    EvalOutputs baseline = pipeline.EvaluateBaseline();
    print_line("baseline", baseline);

    const SamplerKind kKinds[] = {
        SamplerKind::kRandom,       SamplerKind::kSmote,
        SamplerKind::kBorderlineSmote, SamplerKind::kAdasyn,
        SamplerKind::kBalancedSvm,  SamplerKind::kRemix,
        SamplerKind::kKMeansSmote,  SamplerKind::kRbo,
        SamplerKind::kEos,
    };
    for (SamplerKind kind : kKinds) {
      SamplerConfig sampler;
      sampler.kind = kind;
      sampler.k_neighbors =
          kind == SamplerKind::kEos ? *common.k_neighbors : 5;
      EvalOutputs out = pipeline.RunSampler(sampler);
      print_line(SamplerKindName(kind), out);
    }

    {
      // DeepSMOTE: latent-space interpolation via an autoencoder (the EOS
      // authors' preceding system, ref [48]).
      GanOptions ae_options;
      ae_options.epochs = 30;
      DeepSmoteOversampler deep_smote(ae_options, 5);
      EvalOutputs out = pipeline.RunSampler(deep_smote);
      print_line("DeepSMOTE", out);
    }

    // Cleaning combos are functions over feature sets, not Oversampler
    // instances; run them through RetrainOn.
    {
      Rng rng(config.seed + 31);
      FeatureSet cleaned =
          SmoteEnn(pipeline.train_embeddings(), 5, 3, rng);
      print_line("SMOTE-ENN", pipeline.RetrainOn(cleaned));
    }
    {
      Rng rng(config.seed + 32);
      FeatureSet cleaned = SmoteTomek(pipeline.train_embeddings(), 5, rng);
      print_line("SMOTE-Tomek", pipeline.RetrainOn(cleaned));
    }
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
