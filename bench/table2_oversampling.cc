// Reproduces Table II: baseline cost-sensitive algorithms (CE/ASL/Focal/
// LDAM) against SMOTE, Borderline-SMOTE, Balanced-SVM, and EOS applied in
// feature-embedding space via the three-phase framework.
//
// Expected shape (paper): every over-sampler beats its baseline, and EOS is
// the best (or tied-best) column for most (dataset, loss) cells.

#include "bench/bench_common.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Table II: Baseline Algorithms & Over-Sampling Accuracy "
              "(BAC GM FM)\n");
  struct Cell {
    std::string dataset;
    std::string loss;
    double baseline;
    double eos;
    double best_other;
  };
  std::vector<Cell> cells;

  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(DatasetKindName(dataset));
    for (LossKind loss : bench::ParseLosses(*common.losses)) {
      ExperimentConfig config = bench::MakeConfig(dataset, common);
      bench::ApplyLoss(config, loss);
      ExperimentPipeline pipeline(config);
      pipeline.Prepare();
      pipeline.TrainPhase1();

      std::printf(" %s:\n", LossKindName(loss));
      EvalOutputs baseline = pipeline.EvaluateBaseline();
      bench::PrintRow("Baseline", baseline.metrics);

      double best_other = 0.0;
      for (SamplerKind kind :
           {SamplerKind::kSmote, SamplerKind::kBorderlineSmote,
            SamplerKind::kBalancedSvm}) {
        SamplerConfig sampler;
        sampler.kind = kind;
        sampler.k_neighbors = 5;
        EvalOutputs out = pipeline.RunSampler(sampler);
        bench::PrintRow(SamplerKindName(kind), out.metrics);
        best_other = std::max(best_other, out.metrics.bac);
      }
      SamplerConfig eos_sampler;
      eos_sampler.kind = SamplerKind::kEos;
      eos_sampler.k_neighbors = *common.k_neighbors;
      EvalOutputs eos_out = pipeline.RunSampler(eos_sampler);
      bench::PrintRow("EOS", eos_out.metrics);
      cells.push_back({DatasetKindName(dataset), LossKindName(loss),
                       baseline.metrics.bac, eos_out.metrics.bac,
                       best_other});
    }
  }

  int eos_beats_baseline = 0;
  int eos_best = 0;
  for (const Cell& cell : cells) {
    if (cell.eos > cell.baseline) ++eos_beats_baseline;
    if (cell.eos >= cell.best_other) ++eos_best;
  }
  std::printf("\nSummary: EOS > baseline in %d/%zu cells; "
              "EOS >= best other sampler in %d/%zu cells\n",
              eos_beats_baseline, cells.size(), eos_best, cells.size());
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
