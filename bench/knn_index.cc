// Indexed-KNN acceptance bench: the brute-vs-index scaling curve plus the
// million-row EOS end-to-end run. Emits BENCH_knn.json.
//
// Data model: clustered embeddings with low intrinsic dimension — each
// point is a cluster center plus a few random basis directions plus small
// isotropic noise. That is what trained-extractor features look like (the
// pipeline's phase-2 embeddings are class-clustered by construction), and
// it is the regime where a KD-tree prunes; on isotropically random 64-d
// data no exact spatial index beats brute force (curse of dimensionality),
// which the --intrinsic_dim=0 escape hatch will happily demonstrate.
//
// Acceptance numbers (ROADMAP item "Indexed KNN"):
//   * index (exact) >= 10x brute per-query at >= 100k rows, 64-d;
//   * EOS over 1M x 64-d completes in seconds (approximate mode — the
//     documented extreme-scale path; exact pruning alone still leaves
//     hundreds of candidate scans per query at that scale).
//
// Run: ./build/bench/knn_index
//      ./build/bench/knn_index --rows=2000,100000 --eos_rows=0

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/dataset.h"
#include "ml/knn.h"
#include "ml/knn_index.h"
#include "sampling/eos.h"
#include "tensor/tensor.h"

namespace eos {
namespace {

// Clustered embedding generator (see file comment). intrinsic_dim == 0
// degenerates to isotropic noise over the full space.
Tensor ClusteredEmbeddings(int64_t rows, int64_t dim, int64_t clusters,
                           int64_t intrinsic_dim, Rng& rng) {
  Tensor centers = Tensor::Uniform({clusters, dim}, -10.0f, 10.0f, rng);
  Tensor basis({clusters, intrinsic_dim > 0 ? intrinsic_dim : 1, dim});
  for (int64_t i = 0; i < basis.numel(); ++i) {
    basis.data()[i] = rng.Normal(0.0f, 1.0f);
  }
  Tensor points({rows, dim});
  float* x = points.data();
  for (int64_t i = 0; i < rows; ++i) {
    int64_t c = i % clusters;
    const float* center = centers.data() + c * dim;
    float* row = x + i * dim;
    for (int64_t j = 0; j < dim; ++j) row[j] = center[j];
    for (int64_t b = 0; b < intrinsic_dim; ++b) {
      float z = rng.Normal(0.0f, 1.0f);
      const float* dir = basis.data() + (c * basis.size(1) + b) * dim;
      for (int64_t j = 0; j < dim; ++j) row[j] += z * dir[j];
    }
    for (int64_t j = 0; j < dim; ++j) row[j] += rng.Normal(0.0f, 0.02f);
  }
  return points;
}

std::vector<int64_t> ParseRowList(const std::string& spec) {
  std::vector<int64_t> out;
  for (const std::string& raw : StrSplit(spec, ',')) {
    std::string name = StrTrim(raw);
    if (name.empty()) continue;
    out.push_back(std::strtoll(name.c_str(), nullptr, 10));
  }
  return out;
}

struct ScaleResult {
  int64_t rows = 0;
  double build_ms = 0;
  double brute_us = 0;   // per leave-one-out query
  double index_us = 0;
  double approx_us = 0;
  double speedup_index = 0;
  double speedup_approx = 0;
  double approx_recall = 0;
  bool exact_match = true;
};

int Run(int argc, char** argv) {
  FlagSet flags;
  std::string* rows_spec = flags.AddString(
      "rows", "2000,20000,100000,200000", "comma list of index sizes");
  int64_t* dim = flags.AddInt("dim", 64, "embedding dimension");
  int64_t* intrinsic_dim =
      flags.AddInt("intrinsic_dim", 3,
                   "per-cluster intrinsic dimension (0 = isotropic)");
  int64_t* clusters = flags.AddInt("clusters", 32, "cluster count");
  int64_t* queries =
      flags.AddInt("queries", 256, "timed leave-one-out queries per size");
  int64_t* k = flags.AddInt("k", 5, "neighbors per query");
  int64_t* budget = flags.AddInt(
      "approx_budget", static_cast<int>(kKnnDefaultLeafBudget),
      "approximate-mode leaf-visit budget");
  int64_t* eos_rows = flags.AddInt(
      "eos_rows", 1000000, "EOS end-to-end row count (0 = skip)");
  int64_t* eos_classes = flags.AddInt("eos_classes", 10, "EOS class count");
  int64_t* seed = flags.AddInt("seed", 1, "generator seed");
  std::string* out =
      flags.AddString("out", "BENCH_knn.json", "JSON output path");
  Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  std::printf("knn_index: %s rows, %lld-d (intrinsic %lld), k=%lld, "
              "%lld queries/size, approx budget %lld\n\n",
              rows_spec->c_str(), static_cast<long long>(*dim),
              static_cast<long long>(*intrinsic_dim),
              static_cast<long long>(*k), static_cast<long long>(*queries),
              static_cast<long long>(*budget));
  std::printf("  %-9s %-10s %-12s %-12s %-12s %-9s %-9s %-7s\n", "rows",
              "build_ms", "brute_us/q", "index_us/q", "approx_us/q",
              "idx_spd", "apx_spd", "recall");

  std::vector<ScaleResult> results;
  for (int64_t n : ParseRowList(*rows_spec)) {
    Rng rng(static_cast<uint64_t>(*seed));
    Tensor points =
        ClusteredEmbeddings(n, *dim, *clusters, *intrinsic_dim, rng);
    // Deterministic query rows, spread across the set.
    int64_t nq = std::min(*queries, n);
    std::vector<int64_t> rows(static_cast<size_t>(nq));
    for (int64_t i = 0; i < nq; ++i) {
      rows[static_cast<size_t>(i)] = (i * n) / nq;
    }

    ScaleResult r;
    r.rows = n;

    Stopwatch build_watch;
    KdTreeIndex tree(points);
    r.build_ms = build_watch.Milliseconds();

    KdTreeOptions approx_options;
    approx_options.leaf_visit_budget = *budget;
    KdTreeIndex approx(points, approx_options);

    KnnIndex brute(points);
    Stopwatch brute_watch;
    auto brute_nbrs = brute.QueryRows(rows, *k);
    r.brute_us = brute_watch.Seconds() * 1e6 / static_cast<double>(nq);

    Stopwatch index_watch;
    auto index_nbrs = tree.QueryRows(rows, *k);
    r.index_us = index_watch.Seconds() * 1e6 / static_cast<double>(nq);

    Stopwatch approx_watch;
    auto approx_nbrs = approx.QueryRows(rows, *k);
    r.approx_us = approx_watch.Seconds() * 1e6 / static_cast<double>(nq);

    r.exact_match = index_nbrs == brute_nbrs;
    int64_t hit = 0, total = 0;
    for (size_t i = 0; i < brute_nbrs.size(); ++i) {
      for (int64_t nb : approx_nbrs[i]) {
        if (std::find(brute_nbrs[i].begin(), brute_nbrs[i].end(), nb) !=
            brute_nbrs[i].end()) {
          ++hit;
        }
      }
      total += static_cast<int64_t>(brute_nbrs[i].size());
    }
    r.approx_recall =
        total > 0 ? static_cast<double>(hit) / static_cast<double>(total)
                  : 1.0;
    r.speedup_index = r.brute_us / r.index_us;
    r.speedup_approx = r.brute_us / r.approx_us;
    results.push_back(r);

    std::printf("  %-9lld %-10.1f %-12.1f %-12.1f %-12.1f %-9.1f %-9.1f "
                "%-7.3f%s\n",
                static_cast<long long>(n), r.build_ms, r.brute_us,
                r.index_us, r.approx_us, r.speedup_index, r.speedup_approx,
                r.approx_recall, r.exact_match ? "" : "  EXACT-MISMATCH!");
  }

  // EOS end-to-end at million-row scale: labels drawn imbalanced and
  // independent of geometry, so every class has adversaries in-neighborhood
  // (the paper's borderline regime, and the sampler's hot path).
  double eos_seconds = 0;
  int64_t eos_synth = 0;
  if (*eos_rows > 0) {
    Rng rng(static_cast<uint64_t>(*seed) + 1);
    FeatureSet data;
    data.features = ClusteredEmbeddings(*eos_rows, *dim, *clusters,
                                        *intrinsic_dim, rng);
    data.num_classes = *eos_classes;
    data.labels.resize(static_cast<size_t>(*eos_rows));
    // Exponential-ish imbalance: class c has weight 2^-c.
    std::vector<float> weights(static_cast<size_t>(*eos_classes));
    for (size_t c = 0; c < weights.size(); ++c) {
      weights[c] = 1.0f / static_cast<float>(int64_t{1} << c);
    }
    for (int64_t i = 0; i < *eos_rows; ++i) {
      data.labels[static_cast<size_t>(i)] = rng.Categorical(weights);
    }
    std::printf("\nEOS end-to-end: %lld x %lld-d, %lld classes, "
                "EOS_KNN=approx:%lld ...\n",
                static_cast<long long>(*eos_rows),
                static_cast<long long>(*dim),
                static_cast<long long>(*eos_classes),
                static_cast<long long>(*budget));
    ScopedForceKnnMode force(KnnMode::kApprox, *budget);
    ExpansiveOversampler sampler(*k);
    Rng sample_rng(static_cast<uint64_t>(*seed) + 2);
    Stopwatch eos_watch;
    FeatureSet balanced = sampler.Resample(data, sample_rng);
    eos_seconds = eos_watch.Seconds();
    eos_synth = balanced.size() - data.size();
    std::printf("  %.1f s wall (%lld synthetic rows)\n", eos_seconds,
                static_cast<long long>(eos_synth));
  }

  std::FILE* f = std::fopen(out->c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out->c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"knn_index\", \"dim\": %" PRId64
               ", \"intrinsic_dim\": %" PRId64 ", \"k\": %" PRId64
               ", \"queries\": %" PRId64 ", \"approx_budget\": %" PRId64
               ",\n \"scaling\": [\n",
               *dim, *intrinsic_dim, *k, *queries, *budget);
  for (size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    std::fprintf(
        f,
        "  {\"rows\": %" PRId64
        ", \"build_ms\": %.2f, \"brute_us_per_query\": %.2f, "
        "\"index_us_per_query\": %.2f, \"approx_us_per_query\": %.2f, "
        "\"speedup_index\": %.2f, \"speedup_approx\": %.2f, "
        "\"approx_recall\": %.4f, \"exact_matches_brute\": %s}%s\n",
        r.rows, r.build_ms, r.brute_us, r.index_us, r.approx_us,
        r.speedup_index, r.speedup_approx, r.approx_recall,
        r.exact_match ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, " ],\n \"eos_end_to_end\": ");
  if (*eos_rows > 0) {
    std::fprintf(f,
                 "{\"rows\": %" PRId64 ", \"classes\": %" PRId64
                 ", \"mode\": \"approx:%" PRId64
                 "\", \"seconds\": %.2f, \"synthetic_rows\": %" PRId64 "}\n",
                 *eos_rows, *eos_classes, *budget, eos_seconds, eos_synth);
  } else {
    std::fprintf(f, "null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out->c_str());

  bool ok = true;
  for (const ScaleResult& r : results) {
    if (!r.exact_match) ok = false;
    if (r.rows >= 100000 && r.speedup_index < 10.0) ok = false;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAILED: exact mismatch or <10x at >=100k\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
