// Kernel microbenchmark with in-process ISA A/B: every case runs once under
// EOS_SIMD=scalar semantics (ScopedForceIsa) and once under avx2 (when the
// CPU has it), single-core (SetThreadCount(1)) so the numbers isolate the
// kernel speedup from runtime-pool scaling. Results — ns/iter, GFLOP/s, and
// the avx2-vs-scalar speedup per case — land in a JSON file (default
// BENCH_tensor.json) for the perf trajectory; the headline acceptance
// number is the gemm_nn speedup (target >= 4x).
//
// Run: ./build/bench/micro_tensor
//      ./build/bench/micro_tensor --min_seconds=1.0 --out=/tmp/t.json

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "runtime/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/simd/dispatch.h"
#include "tensor/tensor_ops.h"

namespace {

struct CaseResult {
  std::string op;
  std::string isa;
  double ns_per_iter = 0;
  double gflops = 0;   // 0 when the case has no meaningful FLOP count
  double speedup = 0;  // avx2 rows only: scalar ns / avx2 ns
};

// Runs `fn` until `min_seconds` of wall clock accumulate (after a warmup
// pass that also grows any workspace lanes), returning seconds per call.
double Measure(const std::function<void()>& fn, double min_seconds) {
  fn();
  fn();
  int64_t iters = 0;
  eos::Stopwatch watch;
  do {
    fn();
    ++iters;
  } while (watch.Seconds() < min_seconds);
  return watch.Seconds() / static_cast<double>(iters);
}

struct Case {
  std::string op;
  double flops_per_iter;  // for GFLOP/s; 0 to skip
  std::function<void()> fn;
};

std::vector<Case> BuildCases() {
  std::vector<Case> cases;
  eos::Rng rng(7);

  for (int64_t n : {64, 128, 256}) {
    auto a = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({n, n}, -1.0f, 1.0f, rng));
    auto b = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({n, n}, -1.0f, 1.0f, rng));
    cases.push_back({eos::StrFormat("gemm_nn_%lld", static_cast<long long>(n)),
                     2.0 * n * n * n,
                     [a, b] { eos::Tensor out = eos::MatMul(*a, *b); }});
  }
  {
    int64_t n = 128;
    auto a = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({n, n}, -1.0f, 1.0f, rng));
    auto b = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({n, n}, -1.0f, 1.0f, rng));
    cases.push_back({"gemm_nt_128", 2.0 * n * n * n, [a, b] {
                       eos::Tensor out = eos::MatMulNT(*a, *b);
                     }});
    cases.push_back({"gemm_tn_128", 2.0 * n * n * n, [a, b] {
                       eos::Tensor out = eos::MatMulTN(*a, *b);
                     }});
  }
  {
    // ResNet-ish conv shape: 16 images, 16->16 channels, 16x16, 3x3.
    int64_t imgs = 16, ch = 16, hw = 16, kk = 3;
    eos::Rng conv_rng(8);
    auto conv = std::make_shared<eos::nn::Conv2d>(ch, ch, kk, 1, 1,
                                                  /*bias=*/true, conv_rng);
    auto x = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({imgs, ch, hw, hw}, -1.0f, 1.0f, conv_rng));
    double flops = 2.0 * imgs * ch * hw * hw * ch * kk * kk;
    cases.push_back({"conv2d_forward_16c", flops, [conv, x] {
                       eos::Tensor out = conv->Forward(*x, /*training=*/false);
                     }});
  }
  {
    eos::Rng bn_rng(9);
    auto bn = std::make_shared<eos::nn::BatchNorm2d>(32);
    auto x = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({32, 32, 16, 16}, -1.0f, 1.0f, bn_rng));
    // Move the running stats once so eval mode sees realistic values.
    bn->Forward(*x, /*training=*/true);
    cases.push_back({"batchnorm_eval_32c", 0.0, [bn, x] {
                       eos::Tensor out = bn->Forward(*x, /*training=*/false);
                     }});
  }
  {
    eos::Rng sm_rng(10);
    auto logits = std::make_shared<eos::Tensor>(
        eos::Tensor::Uniform({256, 128}, -4.0f, 4.0f, sm_rng));
    cases.push_back({"softmax_rows_256x128", 0.0, [logits] {
                       eos::Tensor out = eos::SoftmaxRows(*logits);
                     }});
  }
  return cases;
}

std::string ResultJson(const CaseResult& r) {
  return eos::StrFormat(
      "{\"op\": \"%s\", \"isa\": \"%s\", \"ns_per_iter\": %.1f, "
      "\"gflops\": %.3f, \"speedup_vs_scalar\": %.3f}",
      r.op.c_str(), r.isa.c_str(), r.ns_per_iter, r.gflops, r.speedup);
}

}  // namespace

int main(int argc, char** argv) {
  eos::FlagSet flags;
  double* min_seconds = flags.AddDouble(
      "min_seconds", 0.3, "min measured wall time per case and ISA");
  std::string* out =
      flags.AddString("out", "BENCH_tensor.json", "JSON output path");
  eos::Status status = flags.Parse(argc, argv);
  if (!status.ok() || flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    return status.ok() ? 0 : 2;
  }

  // Single core: the acceptance number is the per-kernel speedup, not pool
  // scaling. (ParallelFor grains make the kernels thread-count-invariant
  // bitwise, so this only changes wall time.)
  eos::runtime::SetThreadCount(1);

  bool have_avx2 = eos::simd::CpuSupportsAvx2();
  std::vector<eos::simd::Isa> isas = {eos::simd::Isa::kScalar};
  if (have_avx2) isas.push_back(eos::simd::Isa::kAvx2);

  std::vector<Case> cases = BuildCases();
  std::vector<CaseResult> results;
  std::printf("micro_tensor: single core, min %.2fs per case; avx2 %s\n\n",
              *min_seconds, have_avx2 ? "available" : "NOT available");
  std::printf("  %-22s %-8s %-14s %-10s %-8s\n", "op", "isa", "ns/iter",
              "gflops", "speedup");

  for (const Case& c : cases) {
    double scalar_ns = 0;
    for (eos::simd::Isa isa : isas) {
      eos::simd::ScopedForceIsa force(isa);
      double sec = Measure(c.fn, *min_seconds);
      CaseResult r;
      r.op = c.op;
      r.isa = eos::simd::IsaName(isa);
      r.ns_per_iter = sec * 1e9;
      r.gflops = c.flops_per_iter > 0 ? c.flops_per_iter / sec * 1e-9 : 0.0;
      if (isa == eos::simd::Isa::kScalar) {
        scalar_ns = r.ns_per_iter;
      } else {
        r.speedup = scalar_ns / r.ns_per_iter;
      }
      results.push_back(r);
      std::printf("  %-22s %-8s %-14.0f %-10.3f %-8.2f\n", r.op.c_str(),
                  r.isa.c_str(), r.ns_per_iter, r.gflops, r.speedup);
    }
  }

  std::FILE* f = std::fopen(out->c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out->c_str());
    return 1;
  }
  std::fprintf(f,
               "{\"bench\": \"micro_tensor\", \"threads\": 1, "
               "\"avx2_available\": %s, \"results\": [\n",
               have_avx2 ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    std::fprintf(f, "  %s%s\n", ResultJson(results[i]).c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("\nwrote %s (%zu rows)\n", out->c_str(), results.size());
  return 0;
}
