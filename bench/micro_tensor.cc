// Micro-benchmarks (google-benchmark): the GEMM and convolution kernels
// that dominate phase-1 training time.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "tensor/matmul.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulNT(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  Tensor b = Tensor::Uniform({n, n}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMulNT(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulNT)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  int64_t channels = state.range(0);
  Rng rng(3);
  nn::Conv2d conv(channels, channels, 3, 1, 1, /*bias=*/false, rng);
  Tensor x = Tensor::Uniform({16, channels, 16, 16}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, /*training=*/false));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Conv2dForward)->Arg(8)->Arg(16)->Arg(32);

void BM_Conv2dBackward(benchmark::State& state) {
  int64_t channels = state.range(0);
  Rng rng(4);
  nn::Conv2d conv(channels, channels, 3, 1, 1, /*bias=*/false, rng);
  Tensor x = Tensor::Uniform({16, channels, 16, 16}, -1.0f, 1.0f, rng);
  Tensor grad = Tensor::Uniform({16, channels, 16, 16}, -1.0f, 1.0f, rng);
  conv.Forward(x, /*training=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Conv2dBackward)->Arg(8)->Arg(16)->Arg(32);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(5);
  nn::BatchNorm2d bn(32);
  Tensor x = Tensor::Uniform({32, 32, 16, 16}, -1.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.Forward(x, /*training=*/true));
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_BatchNormForward);

}  // namespace
}  // namespace eos

BENCHMARK_MAIN();
