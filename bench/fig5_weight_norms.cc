// Reproduces Figure 5: per-class classifier weight norms before and after
// over-sampling in embedding space.
//
// Expected shape (paper): baseline norms decay toward minority classes;
// over-sampling partially flattens them; EOS tends to produce the largest
// and most even norms (while not perfectly flat — the paper argues EOS's
// benefit is range expansion, not merely norm equalization).
//
// Defaults to --datasets=cifar10 to bound runtime.

#include "bench/bench_common.h"
#include "metrics/weight_norms.h"

namespace eos {
namespace {

void PrintNorms(const char* label, const std::vector<double>& norms) {
  std::printf("  %-10s", label);
  for (double v : norms) std::printf(" %6.3f", v);
  std::printf("   (max/min %.2f)\n", WeightNormRatio(norms));
}

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.datasets = "cifar10";  // bench-local default
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Figure 5: per-class head weight norms (columns = class 0.."
              "C-1, majority to minority)\n");
  int eos_evens = 0;
  int panels = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    for (LossKind loss : bench::ParseLosses(*common.losses)) {
      ExperimentConfig config = bench::MakeConfig(dataset, common);
      bench::ApplyLoss(config, loss);
      ExperimentPipeline pipeline(config);
      pipeline.Prepare();
      pipeline.TrainPhase1();

      bench::PrintHeader(StrFormat("%s / %s", DatasetKindName(dataset),
                                   LossKindName(loss)));
      EvalOutputs baseline = pipeline.EvaluateBaseline();
      PrintNorms("baseline", baseline.weight_norms);
      double base_ratio = WeightNormRatio(baseline.weight_norms);
      double eos_ratio = base_ratio;
      for (SamplerKind kind :
           {SamplerKind::kSmote, SamplerKind::kBorderlineSmote,
            SamplerKind::kBalancedSvm, SamplerKind::kEos}) {
        SamplerConfig sampler;
        sampler.kind = kind;
        sampler.k_neighbors =
            kind == SamplerKind::kEos ? *common.k_neighbors : 5;
        EvalOutputs out = pipeline.RunSampler(sampler);
        PrintNorms(SamplerKindName(kind), out.weight_norms);
        if (kind == SamplerKind::kEos) {
          eos_ratio = WeightNormRatio(out.weight_norms);
        }
      }
      ++panels;
      if (eos_ratio < base_ratio) ++eos_evens;
    }
  }
  std::printf("\nSummary: EOS evened the norm ratio vs baseline in %d/%d "
              "panels\n",
              eos_evens, panels);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
