// Reproduces Table III: GAN-based over-sampling (GAMO-like, BAGAN-like,
// CGAN) against EOS. The GAN methods are model-agnostic pre-processing —
// they balance the pixel-space training set and a fresh CNN is trained on
// it — while EOS augments embeddings and retrains only the head.
//
// Expected shape (paper): GAMO and BAGAN clearly below EOS; CGAN close to
// (occasionally above) EOS but at a per-class model-training cost that
// scales with the number of classes.
//
// Defaults to --losses=ce to bound runtime (each GAN cell trains both the
// generative model(s) and a full CNN); pass --losses=ce,asl,focal,ldam for
// the full table.

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "gan/bagan_like.h"
#include "gan/cgan.h"
#include "gan/gamo_like.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.losses = "ce";  // bench-local default; every cell trains a CNN
  int64_t* gan_epochs = flags.AddInt("gan_epochs", 30,
                                     "adversarial training epochs per GAN");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Table III: GAN-based over-sampling vs EOS (BAC GM FM)\n");

  GanOptions gan_options;
  gan_options.epochs = *gan_epochs;

  int eos_beats_gamo = 0;
  int eos_beats_bagan = 0;
  int cells = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    bench::PrintHeader(DatasetKindName(dataset));
    for (LossKind loss : bench::ParseLosses(*common.losses)) {
      ExperimentConfig config = bench::MakeConfig(dataset, common);
      bench::ApplyLoss(config, loss);
      std::printf(" %s:\n", LossKindName(loss));

      double gamo_bac = 0.0;
      double bagan_bac = 0.0;
      {
        GamoLikeOversampler gamo(gan_options);
        Stopwatch watch;
        EvalOutputs out = RunPixelSpacePipeline(config, gamo);
        bench::PrintRow("GAMO", out.metrics);
        std::printf("      (pre-processing wall clock %.1fs)\n",
                    watch.Seconds());
        gamo_bac = out.metrics.bac;
      }
      {
        BaganLikeOversampler bagan(gan_options);
        EvalOutputs out = RunPixelSpacePipeline(config, bagan);
        bench::PrintRow("BAGAN", out.metrics);
        bagan_bac = out.metrics.bac;
      }
      {
        CganOversampler cgan(gan_options);
        Stopwatch watch;
        EvalOutputs out = RunPixelSpacePipeline(config, cgan);
        bench::PrintRow("CGAN", out.metrics);
        std::printf("      (trained %lld per-class generative models, "
                    "%.1fs)\n",
                    static_cast<long long>(cgan.models_trained()),
                    watch.Seconds());
      }
      {
        ExperimentPipeline pipeline(config);
        pipeline.Prepare();
        pipeline.TrainPhase1();
        SamplerConfig eos_config;
        eos_config.kind = SamplerKind::kEos;
        eos_config.k_neighbors = *common.k_neighbors;
        EvalOutputs out = pipeline.RunSampler(eos_config);
        bench::PrintRow("EOS", out.metrics);
        ++cells;
        if (out.metrics.bac > gamo_bac) ++eos_beats_gamo;
        if (out.metrics.bac > bagan_bac) ++eos_beats_bagan;
      }
    }
  }
  std::printf("\nSummary: EOS > GAMO in %d/%d cells, EOS > BAGAN in %d/%d "
              "cells (paper: EOS wins all; only CGAN is competitive)\n",
              eos_beats_gamo, cells, eos_beats_bagan, cells);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
