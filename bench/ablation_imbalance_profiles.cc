// Ablation (ours): imbalance *profile* sensitivity. §II-A notes that
// exponential and step imbalance are the common real-world shapes and that
// the paper studies the exponential kind; this bench runs the same
// baseline-vs-EOS comparison under both profiles and a ratio sweep, showing
// that the generalization-gap mechanism (and EOS's fix) is profile-
// agnostic while absolute difficulty tracks the ratio.

#include "bench/bench_common.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Imbalance-profile ablation (CIFAR10-like, CE)\n");
  for (ImbalanceType type :
       {ImbalanceType::kExponential, ImbalanceType::kStep}) {
    const char* type_name =
        type == ImbalanceType::kExponential ? "exponential" : "step";
    for (double ratio : {10.0, 50.0, 100.0}) {
      ExperimentConfig config =
          bench::MakeConfig(DatasetKind::kCifar10Like, common);
      config.loss.kind = LossKind::kCrossEntropy;
      config.imbalance_type = type;
      config.imbalance_ratio = ratio;
      ExperimentPipeline pipeline(config);
      pipeline.Prepare();
      pipeline.TrainPhase1();
      EvalOutputs baseline = pipeline.EvaluateBaseline();
      SamplerConfig eos_config;
      eos_config.kind = SamplerKind::kEos;
      eos_config.k_neighbors = *common.k_neighbors;
      EvalOutputs eos_out = pipeline.RunSampler(eos_config);
      std::printf("  %-12s ratio %5.0f:1 | baseline BAC %s gap %5.2f | "
                  "EOS BAC %s gap %5.2f | delta %+0.4f\n",
                  type_name, ratio,
                  FormatMetric(baseline.metrics.bac).c_str(),
                  baseline.gap.mean,
                  FormatMetric(eos_out.metrics.bac).c_str(),
                  eos_out.gap.mean,
                  eos_out.metrics.bac - baseline.metrics.bac);
    }
  }
  std::printf("\n(expected shape: baseline BAC falls and the gap grows with "
              "the ratio under both profiles; EOS recovers a large share "
              "either way)\n");
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
