// Reproduces Figure 7: balanced train/test accuracy of the retrained
// classifier head, per retraining epoch, for EOS vs SMOTE on CIFAR10-like
// data with cross-entropy.
//
// Expected shape (paper): both methods plateau by roughly epoch 10 (which
// is why the framework retrains for only 10 epochs); EOS gains marginally
// from longer retraining while SMOTE does not.

#include "bench/bench_common.h"
#include "core/three_phase.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

double HeadBac(nn::ImageClassifier& net, const FeatureSet& features) {
  Tensor logits = net.head->Forward(features.features, /*training=*/false);
  std::vector<int64_t> preds = ArgMaxRows(logits);
  ConfusionMatrix confusion(features.num_classes);
  confusion.AddAll(features.labels, preds);
  return ComputeSkewMetrics(confusion).bac;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  int64_t* retrain_epochs =
      flags.AddInt("retrain_epochs", 30, "head retraining epochs to trace");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  ExperimentConfig config =
      bench::MakeConfig(DatasetKind::kCifar10Like, common);
  config.loss.kind = LossKind::kCrossEntropy;
  ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainPhase1();

  std::printf("Figure 7: head-retraining balanced accuracy per epoch "
              "(CIFAR10-like, CE)\n\n");
  std::printf("%-6s %12s %12s %12s %12s\n", "epoch", "SMOTE-train",
              "SMOTE-test", "EOS-train", "EOS-test");

  struct Series {
    std::vector<double> train;
    std::vector<double> test;
  };
  Series smote_series;
  Series eos_series;
  for (int pass = 0; pass < 2; ++pass) {
    bool is_eos = pass == 1;
    SamplerConfig sampler_config;
    sampler_config.kind = is_eos ? SamplerKind::kEos : SamplerKind::kSmote;
    sampler_config.k_neighbors = is_eos ? *common.k_neighbors : 5;
    auto sampler = MakeOversampler(sampler_config);
    Rng rng(config.seed + 400);
    FeatureSet balanced =
        sampler->Resample(pipeline.train_embeddings(), rng);

    HeadRetrainOptions options = pipeline.config().head;
    options.epochs = *retrain_epochs;
    Series& series = is_eos ? eos_series : smote_series;
    Rng head_rng(config.seed + 500);
    RetrainHead(pipeline.net(), balanced, options, head_rng,
                [&](int64_t) {
                  series.train.push_back(HeadBac(pipeline.net(), balanced));
                  series.test.push_back(
                      HeadBac(pipeline.net(), pipeline.test_embeddings()));
                });
  }

  double eos_at_10 = 0.0;
  double eos_at_end = 0.0;
  double smote_at_10 = 0.0;
  double smote_at_end = 0.0;
  for (size_t e = 0; e < eos_series.test.size(); ++e) {
    std::printf("%-6zu %12.4f %12.4f %12.4f %12.4f\n", e + 1,
                smote_series.train[e], smote_series.test[e],
                eos_series.train[e], eos_series.test[e]);
    if (e + 1 == 10) {
      eos_at_10 = eos_series.test[e];
      smote_at_10 = smote_series.test[e];
    }
    eos_at_end = eos_series.test[e];
    smote_at_end = smote_series.test[e];
  }
  std::printf("\nSummary: test BAC at epoch 10 -> end: "
              "SMOTE %.4f -> %.4f (delta %+0.4f), "
              "EOS %.4f -> %.4f (delta %+0.4f)\n",
              smote_at_10, smote_at_end, smote_at_end - smote_at_10,
              eos_at_10, eos_at_end, eos_at_end - eos_at_10);
  std::printf("(paper: both flat-line by epoch 10; EOS gains marginally "
              "beyond it)\n");
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
