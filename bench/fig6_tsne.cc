// Reproduces Figure 6: t-SNE visualization of the decision boundary between
// a majority class and its similar minority sibling (the paper's
// automobile/truck pair at 60:1). Classes 0 and 1 of the CIFAR10-like
// generator share a shape family; the imbalance profile is overridden so
// class 1 is a 60:1 minority of class 0.
//
// For the baseline and each over-sampler the bench embeds the two classes'
// (augmented) training features with t-SNE, writes one CSV per method
// (x, y, label, is_synthetic), and prints two structure statistics:
//   density  — mean distance of a minority point to its nearest minority
//              neighbor in the 2-d embedding (lower = denser, more uniform)
//   margin   — mean distance of a minority point to its nearest majority
//              point (higher = wider local boundary)
//
// Expected shape (paper): EOS yields the densest, most uniform minority
// structure with the widest local margin.

#include <cmath>

#include "bench/bench_common.h"
#include "common/csv.h"
#include "tensor/tensor_ops.h"
#include "tsne/tsne.h"

namespace eos {
namespace {

struct Structure {
  double density;
  double margin;
};

Structure MeasureStructure(const Tensor& embedding,
                           const std::vector<int64_t>& labels,
                           int64_t minority) {
  int64_t n = embedding.size(0);
  double density_sum = 0.0;
  double margin_sum = 0.0;
  int64_t minority_count = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (labels[static_cast<size_t>(i)] != minority) continue;
    double best_same = 1e300;
    double best_other = 1e300;
    for (int64_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double dx = embedding.at(i, 0) - embedding.at(j, 0);
      double dy = embedding.at(i, 1) - embedding.at(j, 1);
      double dist = std::sqrt(dx * dx + dy * dy);
      if (labels[static_cast<size_t>(j)] == minority) {
        best_same = std::min(best_same, dist);
      } else {
        best_other = std::min(best_other, dist);
      }
    }
    density_sum += best_same;
    margin_sum += best_other;
    ++minority_count;
  }
  Structure s;
  s.density = density_sum / std::max<int64_t>(1, minority_count);
  s.margin = margin_sum / std::max<int64_t>(1, minority_count);
  return s;
}

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  std::string* out_prefix = flags.AddString(
      "out_prefix", "fig6_tsne", "CSV path prefix (one file per method)");
  int64_t* tsne_iters = flags.AddInt("tsne_iters", 300, "t-SNE iterations");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  ExperimentConfig config =
      bench::MakeConfig(DatasetKind::kCifar10Like, common);
  config.loss.kind = LossKind::kCrossEntropy;
  config.max_per_class = 180;

  ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainPhase1();

  // Classes 0 and 1 share a shape family (the auto/truck analogue) but the
  // exponential profile keeps them both near the head. To reproduce the
  // paper's 60:1 similar-pair setting, subsample class 1's embeddings down
  // to max_per_class / 60 rows before augmentation.
  FeatureSet train_fe;
  {
    const FeatureSet& full = pipeline.train_embeddings();
    int64_t keep_minority =
        std::max<int64_t>(3, config.max_per_class / 60);
    std::vector<int64_t> rows;
    int64_t kept = 0;
    for (int64_t i = 0; i < full.size(); ++i) {
      if (full.labels[static_cast<size_t>(i)] == 1) {
        if (kept >= keep_minority) continue;
        ++kept;
      }
      rows.push_back(i);
    }
    train_fe = SelectFeatures(full, rows);
  }

  std::printf("Figure 6: t-SNE of the class 0 (majority) vs class 1 "
              "(minority sibling) boundary\n\n");
  std::printf("%-10s %8s %10s %9s  %s\n", "method", "points", "density",
              "margin", "csv");

  struct MethodSpec {
    const char* label;
    SamplerKind kind;  // kNone = baseline
  };
  const MethodSpec kMethods[] = {
      {"baseline", SamplerKind::kNone},
      {"SMOTE", SamplerKind::kSmote},
      {"B-SMOTE", SamplerKind::kBorderlineSmote},
      {"Bal-SVM", SamplerKind::kBalancedSvm},
      {"EOS", SamplerKind::kEos},
  };

  double baseline_margin = 0.0;
  double eos_margin = 0.0;
  double baseline_density = 0.0;
  double eos_density = 0.0;
  uint64_t method_index = 0;
  for (const MethodSpec& method : kMethods) {
    ++method_index;
    // Build the (possibly augmented) training embedding set.
    FeatureSet augmented = train_fe;
    if (method.kind != SamplerKind::kNone) {
      SamplerConfig sampler_config;
      sampler_config.kind = method.kind;
      sampler_config.k_neighbors =
          method.kind == SamplerKind::kEos ? *common.k_neighbors : 5;
      auto sampler = MakeOversampler(sampler_config);
      Rng rng(config.seed + 77, /*stream=*/method_index);
      augmented = sampler->Resample(train_fe, rng);
    }
    // Select the visualized pair.
    std::vector<int64_t> rows;
    std::vector<int64_t> labels;
    std::vector<int64_t> synthetic;
    for (int64_t i = 0; i < augmented.size(); ++i) {
      int64_t y = augmented.labels[static_cast<size_t>(i)];
      if (y != 0 && y != 1) continue;
      rows.push_back(i);
      labels.push_back(y);
      synthetic.push_back(i >= train_fe.size() ? 1 : 0);
    }
    Tensor points = GatherRows(augmented.features, rows);

    TsneOptions tsne_options;
    tsne_options.iterations = *tsne_iters;
    tsne_options.perplexity = 20.0;
    tsne_options.seed = config.seed + 5;
    Tensor embedding = Tsne(points, tsne_options);

    Structure structure = MeasureStructure(embedding, labels, /*minority=*/1);
    std::string csv_path =
        StrFormat("%s_%s.csv", out_prefix->c_str(), method.label);
    CsvWriter csv;
    if (csv.Open(csv_path).ok()) {
      (void)csv.WriteRow(  // plot data is best-effort; stdout has results
          {"x", "y", "label", "is_synthetic"});
      for (int64_t i = 0; i < embedding.size(0); ++i) {
        (void)csv.WriteRow(  // plot data is best-effort; stdout has results
            {StrFormat("%.4f", embedding.at(i, 0)),
             StrFormat("%.4f", embedding.at(i, 1)),
             std::to_string(labels[static_cast<size_t>(i)]),
             std::to_string(synthetic[static_cast<size_t>(i)])});
      }
      eos::Status close_status = csv.Close();
      if (!close_status.ok()) {
        std::fprintf(stderr, "csv write failed: %s\n",
                     close_status.ToString().c_str());
      }
    }
    std::printf("%-10s %8lld %10.3f %9.3f  %s\n", method.label,
                static_cast<long long>(embedding.size(0)), structure.density,
                structure.margin, csv_path.c_str());
    if (method.kind == SamplerKind::kNone) {
      baseline_margin = structure.margin;
      baseline_density = structure.density;
    }
    if (method.kind == SamplerKind::kEos) {
      eos_margin = structure.margin;
      eos_density = structure.density;
    }
  }
  std::printf("\nSummary: EOS density %.3f vs baseline %.3f (lower = denser"
              "/more uniform); EOS margin %.3f vs baseline %.3f\n",
              eos_density, baseline_density, eos_margin, baseline_margin);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
