// Ablation (ours, motivated by a paper-internal discrepancy): the paper's
// abstract/§III-D describe EOS as *convex combinations toward* the nearest
// enemy, while Algorithm 2's last line reads B + R*(B - N) — a reflection
// *away* from it. This bench sweeps both modes and the interpolation reach
// (max_step), reporting accuracy and generalization gap for each, plus the
// sensitivity to the neighborhood size at fixed mode.
//
// The library defaults to kConvex with max_step 0.5 (see eos.h): the convex
// direction matches the prose, and capping the reach at the base-enemy
// midpoint keeps synthetic minority labels off genuine majority territory.

#include "bench/bench_common.h"
#include "sampling/eos.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  ExperimentConfig config =
      bench::MakeConfig(DatasetKind::kCifar10Like, common);
  config.loss.kind = LossKind::kCrossEntropy;
  ExperimentPipeline pipeline(config);
  pipeline.Prepare();
  pipeline.TrainPhase1();

  EvalOutputs baseline = pipeline.EvaluateBaseline();
  SamplerConfig smote;
  smote.kind = SamplerKind::kSmote;
  EvalOutputs smote_out = pipeline.RunSampler(smote);

  std::printf("EOS mode/reach ablation (CIFAR10-like, CE)\n\n");
  std::printf("  %-22s %6s %6s %6s %8s\n", "variant", "BAC", "GM", "FM",
              "gap");
  auto print_line = [](const std::string& label, const EvalOutputs& out) {
    std::printf("  %-22s %s %8.2f\n", label.c_str(),
                bench::MetricCells(out.metrics).c_str(), out.gap.mean);
  };
  print_line("baseline", baseline);
  print_line("SMOTE (reference)", smote_out);

  for (EosMode mode : {EosMode::kConvex, EosMode::kReflect}) {
    for (float max_step : {0.25f, 0.5f, 0.75f, 1.0f}) {
      ExpansiveOversampler sampler(*common.k_neighbors, mode, max_step);
      EvalOutputs out = pipeline.RunSampler(sampler);
      print_line(StrFormat("%s step<=%.2f",
                           mode == EosMode::kConvex ? "convex" : "reflect",
                           max_step),
                 out);
    }
  }

  std::printf("\n  neighborhood sensitivity (convex, step<=0.5):\n");
  for (int64_t k : {3, 5, 10, 20, 50}) {
    ExpansiveOversampler sampler(k, EosMode::kConvex, 0.5f);
    EvalOutputs out = pipeline.RunSampler(sampler);
    const auto& stats = sampler.last_stats();
    int64_t total_bases = 0;
    for (int64_t b : stats.borderline_bases) total_bases += b;
    print_line(StrFormat("k=%lld (bases=%lld)", static_cast<long long>(k),
                         static_cast<long long>(total_bases)),
               out);
  }
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
