// Reproduces Figure 4: the generalization gap measured against the test
// set's true positives vs. its false positives. As in the paper, two
// architecture depths are used (the CelebA stand-in gets the deeper net,
// mirroring ResNet-56 vs ResNet-32).
//
// Expected shape (paper): the FP gap is 2x-4x the TP gap on every dataset —
// the model generalizes exactly where the learned feature ranges align.

#include "bench/bench_common.h"
#include "metrics/generalization_gap.h"
#include "tensor/tensor_ops.h"

namespace eos {
namespace {

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  bench::HandleParse(flags.Parse(argc, argv), flags);

  std::printf("Figure 4: generalization gap for test TPs vs FPs "
              "(CE loss)\n\n");
  std::printf("%-14s %10s %10s %8s\n", "dataset", "TP gap", "FP gap",
              "FP/TP");

  int fp_larger = 0;
  int datasets_run = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    ExperimentConfig config = bench::MakeConfig(dataset, common);
    config.loss.kind = LossKind::kCrossEntropy;
    if (dataset == DatasetKind::kCelebALike) {
      config.blocks_per_stage = 2;  // the deeper ResNet, as in the paper
    }
    ExperimentPipeline pipeline(config);
    pipeline.Prepare();
    pipeline.TrainPhase1();

    // Split the test embeddings by prediction correctness. A test example
    // predicted class y-hat != y is a false positive *of class y-hat*, so
    // the FP subset is labeled by prediction (that is the class whose
    // footprint it lands in); TPs keep their true label.
    const FeatureSet& test_fe = pipeline.test_embeddings();
    Tensor logits =
        pipeline.net().head->Forward(test_fe.features, /*training=*/false);
    std::vector<int64_t> preds = ArgMaxRows(logits);

    std::vector<int64_t> tp_rows;
    std::vector<int64_t> fp_rows;
    for (int64_t i = 0; i < test_fe.size(); ++i) {
      if (preds[static_cast<size_t>(i)] ==
          test_fe.labels[static_cast<size_t>(i)]) {
        tp_rows.push_back(i);
      } else {
        fp_rows.push_back(i);
      }
    }
    if (tp_rows.empty() || fp_rows.empty()) {
      std::printf("%-14s (degenerate split: %zu TPs, %zu FPs)\n",
                  DatasetKindName(dataset), tp_rows.size(), fp_rows.size());
      continue;
    }
    FeatureSet tp_set = SelectFeatures(test_fe, tp_rows);
    FeatureSet fp_set = SelectFeatures(test_fe, fp_rows);
    // Label FPs by the predicted class.
    for (size_t i = 0; i < fp_rows.size(); ++i) {
      fp_set.labels[i] = preds[static_cast<size_t>(fp_rows[i])];
    }

    double tp_gap =
        GeneralizationGap(pipeline.train_embeddings(), tp_set).mean;
    double fp_gap =
        GeneralizationGap(pipeline.train_embeddings(), fp_set).mean;
    std::printf("%-14s %10.3f %10.3f %8.2f\n", DatasetKindName(dataset),
                tp_gap, fp_gap, fp_gap / std::max(tp_gap, 1e-9));
    ++datasets_run;
    if (fp_gap > tp_gap) ++fp_larger;
  }
  std::printf("\nSummary: FP gap exceeded TP gap on %d/%d datasets "
              "(paper: all, by 2x-4x)\n",
              fp_larger, datasets_run);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
