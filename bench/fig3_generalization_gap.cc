// Reproduces Figure 3: per-class generalization gap under each phase-1 loss
// with the over-samplers overlaid. The paper's panels show (a) the gap
// rising with the class imbalance level for every baseline, (b) SMOTE /
// Borderline-SMOTE / Balanced-SVM overlapping the baseline exactly (being
// interpolative they cannot change any feature range), and (c) only EOS
// flattening the minority-class gap.
//
// Defaults to --datasets=cifar10 to bound runtime; each additional dataset
// adds one phase-1 training per loss. A CSV with every series can be
// written via --csv.

#include "bench/bench_common.h"
#include "common/csv.h"

namespace eos {
namespace {

void PrintSeries(const char* label, const std::vector<double>& values) {
  std::printf("  %-10s", label);
  for (double v : values) std::printf(" %7.2f", v);
  std::printf("\n");
}

int Run(int argc, char** argv) {
  FlagSet flags;
  bench::CommonFlags common = bench::RegisterCommonFlags(flags);
  *common.datasets = "cifar10";  // bench-local default
  std::string* csv_path = flags.AddString(
      "csv", "", "optional path for a CSV dump of all gap series");
  bench::HandleParse(flags.Parse(argc, argv), flags);

  CsvWriter csv;
  if (!csv_path->empty()) {
    Status st = csv.Open(*csv_path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  std::printf("Figure 3: per-class generalization gap (columns = class 0.."
              "C-1, majority to minority)\n");
  int eos_flattens = 0;
  int panels = 0;
  for (DatasetKind dataset : bench::ParseDatasets(*common.datasets)) {
    for (LossKind loss : bench::ParseLosses(*common.losses)) {
      ExperimentConfig config = bench::MakeConfig(dataset, common);
      bench::ApplyLoss(config, loss);
      ExperimentPipeline pipeline(config);
      pipeline.Prepare();
      pipeline.TrainPhase1();

      bench::PrintHeader(StrFormat("%s / %s", DatasetKindName(dataset),
                                   LossKindName(loss)));
      std::vector<int64_t> counts = pipeline.train_counts();
      std::vector<double> count_series(counts.begin(), counts.end());
      PrintSeries("n_train", count_series);

      EvalOutputs baseline = pipeline.EvaluateBaseline();
      PrintSeries("baseline", baseline.gap.per_class);

      std::vector<double> eos_series;
      for (SamplerKind kind :
           {SamplerKind::kSmote, SamplerKind::kBorderlineSmote,
            SamplerKind::kBalancedSvm, SamplerKind::kEos}) {
        SamplerConfig sampler;
        sampler.kind = kind;
        sampler.k_neighbors =
            kind == SamplerKind::kEos ? *common.k_neighbors : 5;
        EvalOutputs out = pipeline.RunSampler(sampler);
        PrintSeries(SamplerKindName(kind), out.gap.per_class);
        if (kind == SamplerKind::kEos) eos_series = out.gap.per_class;
        if (csv.is_open()) {
          std::vector<std::string> row = {DatasetKindName(dataset),
                                          LossKindName(loss),
                                          SamplerKindName(kind)};
          for (double v : out.gap.per_class) {
            row.push_back(StrFormat("%.4f", v));
          }
          // CSV is an optional extra; the table also lands on stdout.
          (void)csv.WriteRow(row);  // optional extra; stdout has the table
        }
      }
      // "Flattening" check: EOS's mean tail-class gap (minority half) is
      // below the baseline's.
      int64_t c = static_cast<int64_t>(baseline.gap.per_class.size());
      double base_tail = 0.0;
      double eos_tail = 0.0;
      for (int64_t i = c / 2; i < c; ++i) {
        base_tail += baseline.gap.per_class[static_cast<size_t>(i)];
        eos_tail += eos_series[static_cast<size_t>(i)];
      }
      ++panels;
      if (eos_tail < base_tail) ++eos_flattens;
      std::printf("  tail-gap sum: baseline %.2f -> EOS %.2f\n", base_tail,
                  eos_tail);
    }
  }
  std::printf("\nSummary: EOS reduced the minority-half gap in %d/%d panels "
              "(paper: all panels; interpolative samplers overlap the "
              "baseline exactly)\n",
              eos_flattens, panels);
  return 0;
}

}  // namespace
}  // namespace eos

int main(int argc, char** argv) { return eos::Run(argc, argv); }
