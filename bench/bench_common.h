#ifndef EOS_BENCH_BENCH_COMMON_H_
#define EOS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "core/pipeline.h"

/// \file
/// Shared scaffolding for the table/figure reproduction harnesses. Every
/// bench accepts the same core flags; per-dataset defaults mirror the
/// paper's setups at laptop scale (see DESIGN.md's substitution table):
///
///   CIFAR10-like / SVHN-like : exponential imbalance 50:1, 150 max/class
///   CIFAR100-like            : 10:1, 20 max/class (paper: 10x fewer, 10:1)
///   CelebA-like              : 40:1, 150 max/class, shorter training
///
/// Pass --scale to multiply sample counts and epochs toward paper scale.

namespace eos::bench {

struct CommonFlags {
  int64_t* image_size;
  int64_t* epochs;
  int64_t* head_epochs;
  int64_t* k_neighbors;
  int64_t* seed;
  double* scale;
  std::string* datasets;
  std::string* losses;
};

inline CommonFlags RegisterCommonFlags(FlagSet& flags) {
  CommonFlags f;
  f.image_size = flags.AddInt("image_size", 16, "synthetic image edge size");
  f.epochs = flags.AddInt("epochs", 0,
                          "phase-1 epochs (0 = per-dataset default)");
  f.head_epochs = flags.AddInt("head_epochs", 10,
                               "phase-3 classifier retrain epochs");
  f.k_neighbors = flags.AddInt("k", 10, "EOS nearest-neighbor count");
  f.seed = flags.AddInt("seed", 1, "experiment seed");
  f.scale = flags.AddDouble(
      "scale", 1.0, "multiplies samples/epochs toward paper scale");
  f.datasets = flags.AddString(
      "datasets", "cifar10,svhn,cifar100,celeba",
      "comma list: cifar10,svhn,cifar100,celeba");
  f.losses = flags.AddString("losses", "ce,asl,focal,ldam",
                             "comma list: ce,asl,focal,ldam");
  return f;
}

inline std::vector<DatasetKind> ParseDatasets(const std::string& spec) {
  std::vector<DatasetKind> out;
  for (const std::string& raw : StrSplit(spec, ',')) {
    std::string name = StrTrim(raw);
    if (name.empty()) continue;
    if (name == "cifar10") {
      out.push_back(DatasetKind::kCifar10Like);
    } else if (name == "svhn") {
      out.push_back(DatasetKind::kSvhnLike);
    } else if (name == "cifar100") {
      out.push_back(DatasetKind::kCifar100Like);
    } else if (name == "celeba") {
      out.push_back(DatasetKind::kCelebALike);
    } else {
      std::fprintf(stderr, "unknown dataset '%s' (skipped)\n", name.c_str());
    }
  }
  return out;
}

inline std::vector<LossKind> ParseLosses(const std::string& spec) {
  std::vector<LossKind> out;
  for (const std::string& raw : StrSplit(spec, ',')) {
    std::string name = StrTrim(raw);
    if (name.empty()) continue;
    if (name == "ce") {
      out.push_back(LossKind::kCrossEntropy);
    } else if (name == "asl") {
      out.push_back(LossKind::kAsl);
    } else if (name == "focal") {
      out.push_back(LossKind::kFocal);
    } else if (name == "ldam") {
      out.push_back(LossKind::kLdam);
    } else {
      std::fprintf(stderr, "unknown loss '%s' (skipped)\n", name.c_str());
    }
  }
  return out;
}

/// Laptop-scale stand-in for the paper's per-dataset training setup.
inline ExperimentConfig MakeConfig(DatasetKind dataset,
                                   const CommonFlags& f) {
  ExperimentConfig config;
  config.dataset = dataset;
  config.synth.image_size = *f.image_size;
  config.blocks_per_stage = 1;  // ResNet-8 stands in for ResNet-32
  config.base_width = 8;
  config.phase1.batch_size = 64;
  config.phase1.lr = 0.05;
  config.phase1.augment = true;
  config.phase1.crop_pad = 2;
  config.head.epochs = *f.head_epochs;
  config.seed = static_cast<uint64_t>(*f.seed);

  switch (dataset) {
    case DatasetKind::kCifar10Like:
    case DatasetKind::kSvhnLike:
      config.max_per_class = 150;
      config.imbalance_ratio = 50.0;
      config.test_per_class = 40;
      config.phase1.epochs = 30;
      break;
    case DatasetKind::kCifar100Like:
      config.max_per_class = 20;
      config.imbalance_ratio = 10.0;
      config.test_per_class = 10;
      config.phase1.epochs = 30;
      break;
    case DatasetKind::kCelebALike:
      // Paper: CelebA trains 50 epochs vs 200 for the others.
      config.max_per_class = 150;
      config.imbalance_ratio = 40.0;
      config.test_per_class = 60;
      config.phase1.epochs = 16;
      break;
  }
  if (*f.epochs > 0) config.phase1.epochs = *f.epochs;
  double scale = *f.scale;
  if (scale != 1.0) {
    config.max_per_class =
        std::max<int64_t>(4, static_cast<int64_t>(config.max_per_class *
                                                  scale));
    config.test_per_class =
        std::max<int64_t>(4, static_cast<int64_t>(config.test_per_class *
                                                  scale));
    config.phase1.epochs = std::max<int64_t>(
        2, static_cast<int64_t>(config.phase1.epochs * scale));
  }
  return config;
}

/// Sets the phase-1 loss plus its scale-dependent defaults. LDAM's cosine
/// head (scale 30) needs a gentler learning rate at laptop scale; the other
/// losses keep the config's lr.
inline void ApplyLoss(ExperimentConfig& config, LossKind loss) {
  config.loss.kind = loss;
  if (loss == LossKind::kLdam) config.phase1.lr = 0.02;
}

/// Prints a "BAC GM FM" triple in paper style (".7581 .8589 .7571").
inline std::string MetricCells(const SkewMetrics& m) {
  return StrFormat("%s  %s  %s", FormatMetric(m.bac).c_str(),
                   FormatMetric(m.gmean).c_str(),
                   FormatMetric(m.f1).c_str());
}

/// One table row: left-justified label plus metric cells.
inline void PrintRow(const std::string& label, const SkewMetrics& m) {
  std::printf("  %-14s %s\n", label.c_str(), MetricCells(m).c_str());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Exits after printing usage when --help was passed; call after Parse.
inline void HandleParse(const Status& status, const FlagSet& flags) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    std::exit(2);
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage().c_str());
    std::exit(0);
  }
}

}  // namespace eos::bench

#endif  // EOS_BENCH_BENCH_COMMON_H_
